#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "compress/factory.hpp"
#include "core/chunk_fetch.hpp"
#include "core/guard.hpp"
#include "core/pipeline.hpp"
#include "core/precond_error.hpp"
#include "core/staging.hpp"
#include "io/container.hpp"
#include "io/container_error.hpp"
#include "io/sequence_file.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace rmp::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Store names become file names under the server's output directory;
/// anything that could escape it (separators, dot-prefixed names) is a
/// malformed request, not an I/O error.
void validate_store_name(const std::string& name) {
  if (name.empty())
    throw NetError(NetErrc::kMalformedPayload, "store request without a name");
  if (name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos || name.front() == '.')
    throw NetError(NetErrc::kMalformedPayload,
                   "store name '" + name +
                       "' must be a plain file name (no separators, no "
                       "leading dot)");
}

struct CodecSet {
  std::unique_ptr<compress::Compressor> reduced;
  std::unique_ptr<compress::Compressor> delta;
  core::CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

CodecSet make_codecs(const std::string& name) {
  if (name == "sz")
    return {compress::make_sz_original(), compress::make_sz_delta()};
  if (name == "zfp")
    return {compress::make_zfp_original(), compress::make_zfp_delta()};
  throw NetError(NetErrc::kMalformedPayload,
                 "unknown codec '" + name + "' (expected sz or zfp)");
}

const char* section_state_name(io::SectionState state) {
  switch (state) {
    case io::SectionState::kOk: return "ok";
    case io::SectionState::kRepaired: return "repaired";
    case io::SectionState::kDamaged: return "damaged";
  }
  return "unknown";
}

}  // namespace

/// Shared read-side state for one published store: a seekable sequence
/// reader plus a chunk fetcher whose cache is shared by every decode
/// request naming this store.  Member order matters -- the fetcher is
/// destroyed first, draining its background prefetch tasks while the
/// reader they capture is still alive.
struct StoreReadCache {
  std::uint64_t file_size = 0;
  io::SequenceReader reader;
  core::ChunkFetcher fetcher;

  StoreReadCache(std::uint64_t size, const std::filesystem::path& path)
      : file_size(size),
        reader(path,
               io::SequenceReadOptions{.allow_index_rebuild = false}),
        fetcher(core::make_sequence_fetcher(reader)) {}
};

/// Per-connection state.  The session thread is the only reader of the
/// socket; writes (responses, possibly from worker threads or staging
/// callbacks) serialize through write_mutex.  The fd is closed by the
/// destructor, i.e. only after every in-flight job's response attempt has
/// released its shared_ptr -- a mid-request disconnect never yields a
/// write to a recycled descriptor.
struct Server::Session {
  int fd = -1;
  std::uint64_t id = 0;
  std::thread thread;
  std::mutex write_mutex;
  std::atomic<bool> alive{true};
  std::atomic<bool> done{false};

  ~Session() {
    if (fd >= 0) ::close(fd);
  }
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), queue_(options_.queue_capacity) {}

Server::~Server() {
  if (running_.load(std::memory_order_acquire)) {
    request_drain();
    drain();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  if (running_.exchange(true))
    throw std::logic_error("Server::start called twice");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw NetError(NetErrc::kIoError, errno_text("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw NetError(NetErrc::kIoError,
                   "bad bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string text = errno_text("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw NetError(NetErrc::kIoError, text);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string text = errno_text("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw NetError(NetErrc::kIoError, text);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0)
    port_ = ntohs(bound.sin_port);

  if (options_.output_dir) {
    std::filesystem::create_directories(*options_.output_dir);
    staging_reduced_ = compress::make_sz_original();
    staging_delta_ = compress::make_sz_delta();
    core::StagingOptions staging_options;
    staging_options.output_dir = options_.output_dir;
    staging_options.max_queue = options_.staging_queue;
    staging_options.serialize.with_parity = options_.with_parity;
    staging_ = std::make_unique<core::StagingNode>(
        core::CodecPair{staging_reduced_.get(), staging_delta_.get()},
        staging_options);
  }

  std::size_t workers = options_.workers != 0
                            ? options_.workers
                            : std::min<std::size_t>(
                                  4, parallel::default_thread_count());
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::request_drain() noexcept {
  // Called from signal handlers: a lock-free atomic store only.  The
  // accept and session loops run on short poll ticks and observe it.
  draining_.store(true, std::memory_order_release);
}

void Server::wait_until_drained() {
  while (!draining_.load(std::memory_order_acquire))
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  drain();
}

void Server::drain() {
  std::lock_guard call_guard(drain_call_mutex_);
  if (drained_.load(std::memory_order_acquire) ||
      !running_.load(std::memory_order_acquire))
    return;
  draining_.store(true, std::memory_order_release);

  // 1. Stop accepting connections.
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Finish every admitted request (queued, executing, or awaiting a
  //    staging callback).  Sessions that race past the draining check are
  //    covered: they bump outstanding_ *before* try_push.
  {
    std::unique_lock lock(drain_mutex_);
    drain_cv_.wait(lock, [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }

  // 3. Retire the workers (pop() drains any stragglers, then nullopt).
  queue_.close();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();

  // 4. Flush the write-behind store and publish journaled sequences via
  //    the durable rename path.
  if (staging_) staging_->drain();
  finish_sequences();

  // 5. Tear down sessions.  No jobs remain, so no response can race the
  //    teardown; fds close when the last shared_ptr drops.
  stop_sessions_.store(true, std::memory_order_release);
  std::vector<std::shared_ptr<Session>> sessions;
  {
    std::lock_guard lock(sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions)
    if (session->thread.joinable()) session->thread.join();
  sessions.clear();

  drained_.store(true, std::memory_order_release);
  running_.store(false, std::memory_order_release);
  obs::count("net.drains");
}

ServerStats Server::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Accept / session plumbing

void Server::accept_loop() {
  while (!draining()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN)
        continue;
      break;
    }
    if (draining()) {
      ::close(fd);
      continue;
    }

    std::lock_guard lock(sessions_mutex_);
    // Reap sessions whose loop has exited, so a long-lived server does
    // not accumulate joinable threads.
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        if ((*it)->thread.joinable()) (*it)->thread.join();
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
    if (sessions_.size() >= options_.max_sessions) {
      // Typed rejection, then close: the client learns *why*.
      const auto bytes = encode_frame(MsgType::kError, 0, 0,
                                      ErrorResponse{"session limit reached"}
                                          .encode(),
                                      Status::kBusy);
      (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      ::close(fd);
      {
        std::lock_guard stats_lock(stats_mutex_);
        ++stats_.rejected_busy;
      }
      obs::count("net.sessions_rejected");
      continue;
    }
    auto session = std::make_shared<Session>();
    session->fd = fd;
    session->id = ++session_counter_;
    {
      std::lock_guard stats_lock(stats_mutex_);
      ++stats_.sessions_total;
      ++stats_.sessions_active;
    }
    obs::count("net.sessions");
    sessions_.push_back(session);
    session->thread =
        std::thread([this, session] { session_loop(session); });
  }
}

void Server::session_loop(const std::shared_ptr<Session>& session) {
  obs::ScopedSpan span("rmpd/session");
  FrameDecoder decoder;
  std::vector<std::uint8_t> buffer(64 * 1024);
  bool torn = false;
  bool failed = false;
  while (!stop_sessions_.load(std::memory_order_acquire) &&
         session->alive.load(std::memory_order_acquire)) {
    pollfd pfd{session->fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      failed = true;
      break;
    }
    if (rc == 0) continue;
    const auto n =
        ::recv(session->fd, buffer.data(), buffer.size(), 0);
    if (n == 0) {
      // Clean EOF: the client is done sending.  A partial frame left in
      // the decoder is a torn frame (mid-request disconnect); responses
      // for already-admitted requests still go out below.
      torn = decoder.buffered() > 0;
      break;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      failed = true;
      break;
    }
    try {
      decoder.feed({buffer.data(), static_cast<std::size_t>(n)});
      while (auto frame = decoder.next())
        handle_frame(session, std::move(*frame));
    } catch (const NetError& e) {
      // Malformed bytes poison the decoder; answer with a typed error
      // (best effort) and tear the session down -- resynchronizing
      // inside a corrupt stream risks misparsing payloads as frames.
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.protocol_errors;
      }
      obs::count("net.protocol_errors");
      send_error(session, 0, Status::kBadRequest, e.what());
      failed = true;
      break;
    }
  }
  if (torn) {
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.protocol_errors;
    }
    obs::count("net.torn_frames");
  }
  if (failed || torn) {
    session->alive.store(false, std::memory_order_release);
    ::shutdown(session->fd, SHUT_RDWR);
  }
  {
    std::lock_guard lock(stats_mutex_);
    --stats_.sessions_active;
  }
  session->done.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Admission

void Server::handle_frame(const std::shared_ptr<Session>& session,
                          Frame frame) {
  const FrameHeader header = frame.header;
  switch (header.type) {
    case MsgType::kPing:
      send_frame(session, MsgType::kPong, header.request_id, {});
      return;
    case MsgType::kStats:
      send_stats(session, header.request_id);
      return;
    case MsgType::kEncode:
    case MsgType::kDecode:
    case MsgType::kVerify:
      break;
    default: {
      std::lock_guard lock(stats_mutex_);
      ++stats_.protocol_errors;
    }
      send_error(session, header.request_id, Status::kBadRequest,
                 std::string("unexpected ") + to_string(header.type) +
                     " frame on the server side");
      return;
  }

  if (draining()) {
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.rejected_shutdown;
    }
    obs::count("net.rejected_shutdown");
    send_error(session, header.request_id, Status::kShuttingDown,
               "server is draining and accepts no new work");
    return;
  }

  Job job;
  job.session = session;
  if (header.deadline_ms > 0)
    job.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(header.deadline_ms);
  job.frame = std::move(frame);

  // outstanding_ rises before admission so drain()'s wait covers a job
  // even in the instant between push and pop.
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  switch (queue_.try_push(std::move(job))) {
    case BoundedQueue<Job>::Push::kAccepted: {
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.accepted;
      }
      obs::count("net.accepted");
      obs::gauge_max("net.queue_peak", queue_.depth());
      return;
    }
    case BoundedQueue<Job>::Push::kBusy: {
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.rejected_busy;
      }
      obs::count("net.rejected_busy");
      send_error(session, header.request_id, Status::kBusy,
                 "request queue full (" +
                     std::to_string(queue_.capacity()) + " deep); retry");
      release_outstanding();
      return;
    }
    case BoundedQueue<Job>::Push::kClosed: {
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.rejected_shutdown;
      }
      obs::count("net.rejected_shutdown");
      send_error(session, header.request_id, Status::kShuttingDown,
                 "server is draining and accepts no new work");
      release_outstanding();
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Workers

void Server::worker_loop() {
  while (auto job = queue_.pop()) {
    if (options_.debug_stall.count() > 0)
      std::this_thread::sleep_for(options_.debug_stall);
    process_job(*job);
  }
}

void Server::process_job(Job& job) {
  const FrameHeader& header = job.frame.header;
  obs::ScopedSpan span(std::string("rmpd/request/") + to_string(header.type));

  if (job.deadline && std::chrono::steady_clock::now() >= *job.deadline) {
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.deadline_missed;
    }
    obs::count("net.deadline_missed");
    send_error(job.session, header.request_id, Status::kDeadlineExceeded,
               "deadline expired before the request started");
    job_finished(false);
    return;
  }

  try {
    switch (header.type) {
      case MsgType::kEncode:
        handle_encode(job);  // owns its completion (async store path)
        return;
      case MsgType::kDecode:
        handle_decode(job);
        break;
      case MsgType::kVerify:
        handle_verify(job);
        break;
      default:
        send_error(job.session, header.request_id, Status::kBadRequest,
                   "unhandled request type");
        job_finished(false);
        return;
    }
    job_finished(true);
  } catch (const NetError& e) {
    send_error(job.session, header.request_id, Status::kBadRequest, e.what());
    job_finished(false);
  } catch (const io::ContainerError& e) {
    Status status = Status::kIntegrityError;
    if (e.code() == io::ContainerErrc::kDeadlineExceeded) {
      status = Status::kDeadlineExceeded;
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.deadline_missed;
      }
      obs::count("net.deadline_missed");
    } else if (e.code() == io::ContainerErrc::kIoError) {
      status = Status::kIoError;
    }
    send_error(job.session, header.request_id, status, e.what());
    job_finished(false);
  } catch (const core::PreconditionError& e) {
    send_error(job.session, header.request_id, Status::kPreconditionError,
               e.what());
    job_finished(false);
  } catch (const std::invalid_argument& e) {
    send_error(job.session, header.request_id, Status::kBadRequest, e.what());
    job_finished(false);
  } catch (const std::exception& e) {
    send_error(job.session, header.request_id, Status::kInternalError,
               e.what());
    job_finished(false);
  }
}

void Server::handle_encode(Job& job) {
  const std::uint64_t request_id = job.frame.header.request_id;
  EncodeRequest request = EncodeRequest::decode(job.frame.payload);
  const CodecSet codecs = make_codecs(request.codec);
  const std::uint64_t original_bytes = request.data.size() * sizeof(double);
  sim::Field field = sim::Field::from_data(request.nx, request.ny, request.nz,
                                           std::move(request.data));

  io::Container container;
  std::string method_ran = request.method;
  if (request.guard || request.error_bound) {
    core::GuardOptions guard_options;
    guard_options.method = request.method;
    guard_options.error_bound = request.error_bound;
    auto result = core::guarded_encode(field, codecs.pair(), guard_options);
    container = std::move(result.container);
    method_ran = result.provenance.actual;
  } else {
    const auto preconditioner = core::make_preconditioner(request.method);
    container = preconditioner->encode(field, codecs.pair());
  }

  io::RetryPolicy retry;
  retry.deadline = job.deadline;

  EncodeResponse response;
  response.method = method_ran;
  response.original_bytes = original_bytes;

  switch (request.store) {
    case StoreMode::kReturn: {
      io::SerializeOptions serialize_options;
      serialize_options.with_parity = options_.with_parity;
      auto bytes = io::serialize(container, serialize_options);
      response.stored_bytes = bytes.size();
      response.container = std::move(bytes);
      send_frame(job.session, MsgType::kEncodeResult, request_id,
                 response.encode());
      job_finished(true);
      return;
    }
    case StoreMode::kFile: {
      if (!staging_)
        throw NetError(NetErrc::kMalformedPayload,
                       "store requested but the server has no --output-dir");
      validate_store_name(request.store_name);
      response.stored = true;
      core::StagingJob staging_job;
      staging_job.container = std::move(container);
      staging_job.name = request.store_name;
      staging_job.retry = retry;
      auto session = job.session;
      staging_job.on_complete =
          [this, session, request_id, response = std::move(response)](
              const core::StagingJobResult& result) mutable {
            if (result.ok) {
              response.stored_bytes = result.bytes_out;
              response.stored_path = result.path.string();
              send_frame(session, MsgType::kEncodeResult, request_id,
                         response.encode());
              job_finished(true);
              return;
            }
            Status status = Status::kInternalError;
            switch (result.error_kind) {
              case core::StagingErrorKind::kDeadlineExceeded:
                status = Status::kDeadlineExceeded;
                {
                  std::lock_guard lock(stats_mutex_);
                  ++stats_.deadline_missed;
                }
                obs::count("net.deadline_missed");
                break;
              case core::StagingErrorKind::kIoError:
                status = Status::kIoError;
                break;
              case core::StagingErrorKind::kPrecondition:
                status = Status::kPreconditionError;
                break;
              default:
                break;
            }
            send_error(session, request_id, status, result.error);
            job_finished(false);
          };
      // Blocking submit is safe here: only worker threads reach this, and
      // the staging queue bound is the write-behind backpressure.
      staging_->submit(std::move(staging_job));
      return;  // completion rides the callback
    }
    case StoreMode::kSequence: {
      if (!options_.output_dir)
        throw NetError(NetErrc::kMalformedPayload,
                       "store requested but the server has no --output-dir");
      validate_store_name(request.store_name);
      std::size_t step = 0;
      std::filesystem::path destination;
      {
        std::lock_guard lock(sequences_mutex_);
        io::SequenceWriter& writer = sequence_writer(request.store_name);
        writer.set_retry(retry);
        step = writer.append(container);
        destination = *options_.output_dir / request.store_name;
      }
      response.stored = true;
      response.stored_bytes = container.payload_bytes();
      response.stored_path = destination.string();
      send_frame(job.session, MsgType::kEncodeResult, request_id,
                 response.encode());
      obs::gauge_max("net.sequence_steps", step + 1);
      job_finished(true);
      return;
    }
  }
  throw NetError(NetErrc::kMalformedPayload, "unknown store mode");
}

std::shared_ptr<StoreReadCache> Server::store_read_cache(
    const std::string& name, const std::filesystem::path& path) {
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec)
    throw NetError(NetErrc::kIoError,
                   "store '" + name + "': " + ec.message());
  std::lock_guard lock(store_readers_mutex_);
  auto it = store_readers_.find(name);
  if (it != store_readers_.end() && it->second->file_size == size)
    return it->second;
  // New store, or a writer re-published it (size changed): (re)open.  A
  // file without a sequence trailer is a plain container store, not an
  // error -- signalled by nullptr so the caller takes the whole-file
  // decode path.
  try {
    auto cache = std::make_shared<StoreReadCache>(size, path);
    store_readers_[name] = cache;
    return cache;
  } catch (const io::ContainerError& error) {
    if (error.code() == io::ContainerErrc::kIndexCorrupt) {
      store_readers_.erase(name);
      return nullptr;
    }
    throw;
  }
}

void Server::handle_decode(Job& job) {
  DecodeRequest request = DecodeRequest::decode(job.frame.payload);
  const CodecSet codecs = make_codecs(request.codec);
  DecodeResponse response;

  // Resolve the archive bytes: inline in the request, or a server-side
  // store read (seekable, chunk-cached for sequence archives).
  if (!request.store_name.empty()) {
    if (!options_.output_dir)
      throw NetError(NetErrc::kMalformedPayload,
                     "store read requested but the server has no "
                     "--output-dir");
    validate_store_name(request.store_name);
    const std::filesystem::path path =
        *options_.output_dir / request.store_name;
    const auto cache = store_read_cache(request.store_name, path);
    if (cache) {
      if (request.step >= cache->reader.step_count())
        throw NetError(NetErrc::kMalformedPayload,
                       "store '" + request.store_name + "' has " +
                           std::to_string(cache->reader.step_count()) +
                           " steps; step " + std::to_string(request.step) +
                           " requested");
      if (request.best_effort) {
        const auto bytes =
            cache->reader.read_step_bytes(
                static_cast<std::size_t>(request.step));
        auto result = core::reconstruct_best_effort(
            std::span<const std::uint8_t>(bytes), codecs.pair());
        response.nx = result.field.nx();
        response.ny = result.field.ny();
        response.nz = result.field.nz();
        if (!result.exact) response.detail = result.detail;
        response.data = std::move(result.field.storage());
      } else {
        const core::ChunkPtr chunk =
            cache->fetcher.get(static_cast<std::size_t>(request.step));
        sim::Field field = core::reconstruct(*chunk, codecs.pair());
        response.nx = field.nx();
        response.ny = field.ny();
        response.nz = field.nz();
        response.data = std::move(field.storage());
      }
      send_frame(job.session, MsgType::kDecodeResult,
                 job.frame.header.request_id, response.encode());
      return;
    }
    // Plain container store: read the whole file and fall through to the
    // inline-bytes decode below.
    std::ifstream in(path, std::ios::binary);
    if (!in)
      throw NetError(NetErrc::kIoError,
                     "store '" + request.store_name + "': cannot open " +
                         path.string());
    request.container.assign(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  if (request.best_effort) {
    auto result = core::reconstruct_best_effort(
        std::span<const std::uint8_t>(request.container), codecs.pair());
    response.nx = result.field.nx();
    response.ny = result.field.ny();
    response.nz = result.field.nz();
    if (!result.exact) response.detail = result.detail;
    response.data = std::move(result.field.storage());
  } else {
    const io::Container container = io::deserialize(request.container);
    sim::Field field = core::reconstruct(container, codecs.pair());
    response.nx = field.nx();
    response.ny = field.ny();
    response.nz = field.nz();
    response.data = std::move(field.storage());
  }
  send_frame(job.session, MsgType::kDecodeResult, job.frame.header.request_id,
             response.encode());
}

void Server::handle_verify(Job& job) {
  const VerifyRequest request = VerifyRequest::decode(job.frame.payload);
  io::ReadReport report;
  io::deserialize_salvage(request.container, &report);
  VerifyResponse response;
  response.complete = report.complete();
  response.repaired = report.repaired();
  response.version = report.version;
  std::string detail;
  for (const auto& section : report.sections) {
    detail += section.name;
    detail += ' ';
    detail += std::to_string(section.bytes);
    detail += ' ';
    detail += section_state_name(section.state);
    detail += '\n';
  }
  response.detail = std::move(detail);
  send_frame(job.session, MsgType::kVerifyResult, job.frame.header.request_id,
             response.encode());
}

// ---------------------------------------------------------------------------
// Responses

void Server::send_stats(const std::shared_ptr<Session>& session,
                        std::uint64_t request_id) {
  StatsResponse response;
  {
    std::lock_guard lock(stats_mutex_);
    response.accepted = stats_.accepted;
    response.rejected_busy = stats_.rejected_busy;
    response.rejected_shutdown = stats_.rejected_shutdown;
    response.deadline_missed = stats_.deadline_missed;
    response.completed = stats_.completed;
    response.failed = stats_.failed;
    response.sessions_active = stats_.sessions_active;
    response.sessions_total = stats_.sessions_total;
    response.protocol_errors = stats_.protocol_errors;
  }
  response.queue_depth = queue_.depth();
  response.queue_capacity = queue_.capacity();
  response.obs_json = obs::Registry::global().to_json();
  send_frame(session, MsgType::kStatsResult, request_id, response.encode());
}

void Server::send_error(const std::shared_ptr<Session>& session,
                        std::uint64_t request_id, Status status,
                        const std::string& message) {
  send_frame(session, MsgType::kError, request_id,
             ErrorResponse{message}.encode(), status);
}

void Server::send_frame(const std::shared_ptr<Session>& session, MsgType type,
                        std::uint64_t request_id,
                        std::span<const std::uint8_t> payload, Status status) {
  if (!session) return;
  const auto bytes = encode_frame(type, request_id, 0, payload, status);
  std::lock_guard lock(session->write_mutex);
  if (!session->alive.load(std::memory_order_acquire)) return;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const auto n = ::send(session->fd, bytes.data() + offset,
                          bytes.size() - offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // Mid-response disconnect: mark the session dead so later
      // responses stop trying, and account for it.  Never throws -- a
      // gone client must not take a worker down.
      session->alive.store(false, std::memory_order_release);
      {
        std::lock_guard stats_lock(stats_mutex_);
        ++stats_.send_failures;
      }
      obs::count("net.send_failures");
      return;
    }
    offset += static_cast<std::size_t>(n);
  }
}

// ---------------------------------------------------------------------------
// Durable sequences + bookkeeping

io::SequenceWriter& Server::sequence_writer(const std::string& name) {
  auto it = sequences_.find(name);
  if (it == sequences_.end()) {
    io::SerializeOptions serialize_options;
    serialize_options.with_parity = options_.with_parity;
    auto writer = std::make_unique<io::SequenceWriter>(
        *options_.output_dir / name, serialize_options);
    it = sequences_.emplace(name, std::move(writer)).first;
  }
  return *it->second;
}

void Server::finish_sequences() {
  std::lock_guard lock(sequences_mutex_);
  for (auto& [name, writer] : sequences_) {
    try {
      // Clear any stale per-request deadline: the final publish runs on
      // the drain's budget, not a long-finished request's.
      writer->set_retry(io::RetryPolicy{});
      writer->finish();
    } catch (const std::exception& e) {
      obs::count("net.sequence_finish_failures");
      std::fprintf(stderr, "rmpd: publishing sequence '%s' failed: %s\n",
                   name.c_str(), e.what());
    }
  }
  sequences_.clear();
}

void Server::job_finished(bool ok) {
  {
    std::lock_guard lock(stats_mutex_);
    if (ok)
      ++stats_.completed;
    else
      ++stats_.failed;
  }
  obs::count(ok ? "net.completed" : "net.failed");
  release_outstanding();
}

void Server::release_outstanding() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    {
      std::lock_guard lock(drain_mutex_);
    }
    drain_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Daemon front end

namespace {

std::atomic<Server*> g_drain_target{nullptr};

void drain_signal_handler(int) {
  // Async-signal-safe: request_drain is a lock-free atomic store.
  if (Server* server = g_drain_target.load()) server->request_drain();
}

}  // namespace

int run_daemon(const ServerOptions& options,
               const std::optional<std::filesystem::path>& port_file) {
  std::signal(SIGPIPE, SIG_IGN);

  Server server(options);
  server.start();
  std::printf("rmpd: listening on %s:%u\n", options.bind_address.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  if (port_file) {
    // Written atomically so a harness polling the file never reads an
    // empty or partial port number.
    std::filesystem::path tmp = *port_file;
    tmp += ".tmp";
    {
      std::ofstream out(tmp);
      out << server.port() << "\n";
    }
    std::filesystem::rename(tmp, *port_file);
  }

  g_drain_target.store(&server);
  struct sigaction action {};
  action.sa_handler = drain_signal_handler;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  server.wait_until_drained();

  g_drain_target.store(nullptr);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  std::printf("rmpd: drained cleanly\n");
  std::fflush(stdout);
  return 0;
}

std::optional<std::string> parse_server_flags(
    const std::vector<std::string>& args, ServerOptions& options,
    std::optional<std::filesystem::path>& port_file,
    std::vector<std::string>* unparsed) {
  auto parse_u64 = [](const std::string& text,
                      std::uint64_t& out) -> bool {
    try {
      std::size_t used = 0;
      out = std::stoull(text, &used);
      return used == text.size();
    } catch (const std::exception&) {
      return false;
    }
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    // Accepts both "--flag=value" and "--flag value".
    const auto match = [&](const char* name) -> int {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        value = arg.substr(prefix.size());
        return 1;
      }
      if (arg == name) {
        if (i + 1 >= args.size()) return -1;
        value = args[++i];
        return 1;
      }
      return 0;
    };
    const auto numeric = [&](const char* name,
                             std::uint64_t max_value,
                             std::uint64_t& out) -> std::optional<int> {
      const int m = match(name);
      if (m == 0) return std::nullopt;
      if (m < 0) return -1;
      std::uint64_t parsed = 0;
      if (!parse_u64(value, parsed) || parsed > max_value) return -1;
      out = parsed;
      return 1;
    };

    std::uint64_t number = 0;
    if (auto m = numeric("--port", 65535, number)) {
      if (*m < 0) return "--port expects a number in [0, 65535]";
      options.port = static_cast<std::uint16_t>(number);
    } else if (match("--bind") == 1) {
      options.bind_address = value;
    } else if (match("--bind") == -1) {
      return "--bind expects an address";
    } else if (auto m2 = numeric("--queue", 1u << 20, number)) {
      if (*m2 < 0) return "--queue expects a positive number";
      options.queue_capacity = static_cast<std::size_t>(number);
    } else if (auto m3 = numeric("--workers", 1024, number)) {
      if (*m3 < 0) return "--workers expects a number in [0, 1024]";
      options.workers = static_cast<std::size_t>(number);
    } else if (auto m4 = numeric("--max-sessions", 1u << 20, number)) {
      if (*m4 < 0) return "--max-sessions expects a positive number";
      options.max_sessions = static_cast<std::size_t>(number);
    } else if (match("--output-dir") == 1) {
      options.output_dir = std::filesystem::path(value);
    } else if (match("--output-dir") == -1) {
      return "--output-dir expects a directory";
    } else if (arg == "--no-parity") {
      options.with_parity = false;
    } else if (auto m5 = numeric("--staging-queue", 1u << 20, number)) {
      if (*m5 < 0) return "--staging-queue expects a positive number";
      options.staging_queue = static_cast<std::size_t>(number);
    } else if (match("--port-file") == 1) {
      port_file = std::filesystem::path(value);
    } else if (match("--port-file") == -1) {
      return "--port-file expects a path";
    } else if (auto m6 = numeric("--debug-stall-ms", 600'000, number)) {
      if (*m6 < 0) return "--debug-stall-ms expects milliseconds";
      options.debug_stall = std::chrono::milliseconds(number);
    } else if (unparsed != nullptr) {
      unparsed->push_back(arg);
    } else {
      return "unknown flag '" + arg + "'";
    }
  }
  return std::nullopt;
}

}  // namespace rmp::net
