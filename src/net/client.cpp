#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

namespace rmp::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool is_unavailable_errno(int err) noexcept {
  return err == ECONNREFUSED || err == EHOSTUNREACH || err == ENETUNREACH ||
         err == ETIMEDOUT;
}

// A retry only makes sense when the failure is transient *and* the
// request could not have been half-applied in a way a re-send would
// compound: BUSY / SHUTTING_DOWN rejections did no work, and a lost
// connection is exactly what request tokens exist for.
bool is_retryable(NetErrc code) noexcept {
  return code == NetErrc::kBusy || code == NetErrc::kShuttingDown ||
         code == NetErrc::kConnectionClosed;
}

constexpr std::chrono::milliseconds kBackoffCap{2000};

std::chrono::milliseconds backoff_delay(std::chrono::milliseconds base,
                                        std::size_t attempt,
                                        std::uint32_t server_hint_ms) {
  if (base.count() <= 0) base = std::chrono::milliseconds{1};
  auto delay = base;
  for (std::size_t i = 0; i < attempt && delay < kBackoffCap; ++i) delay *= 2;
  delay = std::min(delay, kBackoffCap);
  return std::max(delay, std::chrono::milliseconds{server_hint_ms});
}

}  // namespace

std::uint64_t Client::make_request_token() {
  static std::mutex mutex;
  static std::mt19937_64 rng{std::random_device{}()};
  std::lock_guard lock(mutex);
  std::uint64_t token = 0;
  while (token == 0) token = rng();
  return token;
}

Client::Client(ClientOptions options) : options_(std::move(options)) {
  // The initial connect honors the retry budget too: "daemon still
  // booting" and "daemon restarting" look identical from here, and both
  // are the cases --retries exists for.
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      connect_socket();
      return;
    } catch (const NetError& error) {
      if (error.code() != NetErrc::kBusy || attempt >= options_.max_retries)
        throw;
      std::this_thread::sleep_for(
          backoff_delay(options_.retry_backoff, attempt, 0));
    }
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::connect_socket() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw NetError(NetErrc::kIoError, errno_text("socket"));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw NetError(NetErrc::kIoError,
                   "bad server address '" + options_.host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    const std::string where =
        options_.host + ":" + std::to_string(options_.port);
    if (is_unavailable_errno(err))
      throw NetError(NetErrc::kBusy, "server unavailable at " + where + " (" +
                                         std::strerror(err) + ")");
    throw NetError(NetErrc::kIoError,
                   "connect to " + where + ": " + std::strerror(err));
  }
}

void Client::reconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // A stale half-frame from the torn connection must not be spliced
  // onto the new stream.
  decoder_ = FrameDecoder{};
  connect_socket();
}

Frame Client::call(MsgType type, std::span<const std::uint8_t> payload) {
  // One id per *logical* call: every attempt re-sends under the same
  // request id (and whatever token the payload carries), so the server
  // can recognize the retry.
  const std::uint64_t request_id = next_id_++;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      if (fd_ < 0) reconnect();
      return call_once(type, request_id, payload);
    } catch (const NetError& error) {
      if (!is_retryable(error.code()) || attempt >= options_.max_retries)
        throw;
      std::uint32_t hint_ms = 0;
      if (const auto* remote = dynamic_cast<const RemoteError*>(&error))
        hint_ms = remote->retry_after_ms();
      if (error.code() == NetErrc::kConnectionClosed && fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
      }
      std::this_thread::sleep_for(
          backoff_delay(options_.retry_backoff, attempt, hint_ms));
    }
  }
}

Frame Client::call_once(MsgType type, std::uint64_t request_id,
                        std::span<const std::uint8_t> payload) {
  if (fd_ < 0)
    throw NetError(NetErrc::kConnectionClosed, "client connection is closed");

  using Clock = std::chrono::steady_clock;
  std::optional<Clock::time_point> deadline;
  std::uint32_t deadline_ms = 0;
  if (options_.deadline.count() > 0) {
    deadline = Clock::now() + options_.deadline;
    deadline_ms = static_cast<std::uint32_t>(options_.deadline.count());
  }

  const auto bytes = encode_frame(type, request_id, deadline_ms, payload);
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const auto n = ::send(fd_, bytes.data() + offset, bytes.size() - offset,
                          MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET)
        throw NetError(NetErrc::kConnectionClosed,
                       "server closed the connection mid-request");
      throw NetError(NetErrc::kIoError, errno_text("send"));
    }
    offset += static_cast<std::size_t>(n);
  }

  std::vector<std::uint8_t> buffer(64 * 1024);
  for (;;) {
    if (auto frame = decoder_.next()) {
      if (frame->header.request_id != request_id)
        throw NetError(NetErrc::kMalformedPayload,
                       "response for a different request id");
      if (frame->header.type == MsgType::kError) {
        const auto error = ErrorResponse::decode(frame->payload);
        throw RemoteError(frame->header.status, error.message,
                          error.retry_after_ms);
      }
      return std::move(*frame);
    }

    int timeout_ms = -1;
    if (deadline) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(*deadline - Clock::now());
      if (remaining.count() <= 0)
        throw NetError(NetErrc::kDeadlineExceeded,
                       "no response within the deadline");
      timeout_ms = static_cast<int>(remaining.count());
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw NetError(NetErrc::kIoError, errno_text("poll"));
    }
    if (rc == 0)
      throw NetError(NetErrc::kDeadlineExceeded,
                     "no response within the deadline");
    const auto n = ::recv(fd_, buffer.data(), buffer.size(), 0);
    if (n == 0)
      throw NetError(NetErrc::kConnectionClosed,
                     decoder_.buffered() > 0
                         ? "server hung up mid-frame"
                         : "server closed the connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (errno == ECONNRESET)
        throw NetError(NetErrc::kConnectionClosed,
                       "connection reset by the server");
      throw NetError(NetErrc::kIoError, errno_text("recv"));
    }
    decoder_.feed({buffer.data(), static_cast<std::size_t>(n)});
  }
}

EncodeResponse Client::encode(const EncodeRequest& request) {
  // Retried encodes must be idempotent: without a token the server
  // cannot tell "retry of a landed append" from "new append", so mint
  // one when the caller enabled retries and did not bring their own.
  if (options_.max_retries > 0 && request.request_token == 0) {
    EncodeRequest tokened = request;
    tokened.request_token = make_request_token();
    const Frame frame = call(MsgType::kEncode, tokened.encode());
    if (frame.header.type != MsgType::kEncodeResult)
      throw NetError(NetErrc::kMalformedPayload, "expected an encode result");
    return EncodeResponse::decode(frame.payload);
  }
  const Frame frame = call(MsgType::kEncode, request.encode());
  if (frame.header.type != MsgType::kEncodeResult)
    throw NetError(NetErrc::kMalformedPayload, "expected an encode result");
  return EncodeResponse::decode(frame.payload);
}

DecodeResponse Client::decode(const DecodeRequest& request) {
  const Frame frame = call(MsgType::kDecode, request.encode());
  if (frame.header.type != MsgType::kDecodeResult)
    throw NetError(NetErrc::kMalformedPayload, "expected a decode result");
  return DecodeResponse::decode(frame.payload);
}

VerifyResponse Client::verify(const VerifyRequest& request) {
  const Frame frame = call(MsgType::kVerify, request.encode());
  if (frame.header.type != MsgType::kVerifyResult)
    throw NetError(NetErrc::kMalformedPayload, "expected a verify result");
  return VerifyResponse::decode(frame.payload);
}

StatsResponse Client::stats() {
  const Frame frame = call(MsgType::kStats, {});
  if (frame.header.type != MsgType::kStatsResult)
    throw NetError(NetErrc::kMalformedPayload, "expected a stats result");
  return StatsResponse::decode(frame.payload);
}

ScrubResponse Client::scrub() {
  const Frame frame = call(MsgType::kScrub, {});
  if (frame.header.type != MsgType::kScrubResult)
    throw NetError(NetErrc::kMalformedPayload, "expected a scrub result");
  return ScrubResponse::decode(frame.payload);
}

void Client::ping() {
  const Frame frame = call(MsgType::kPing, {});
  if (frame.header.type != MsgType::kPong)
    throw NetError(NetErrc::kMalformedPayload, "expected a pong");
}

}  // namespace rmp::net
