#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace rmp::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool is_unavailable_errno(int err) noexcept {
  return err == ECONNREFUSED || err == EHOSTUNREACH || err == ENETUNREACH ||
         err == ETIMEDOUT;
}

}  // namespace

Client::Client(ClientOptions options) : options_(std::move(options)) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw NetError(NetErrc::kIoError, errno_text("socket"));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw NetError(NetErrc::kIoError,
                   "bad server address '" + options_.host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    const std::string where =
        options_.host + ":" + std::to_string(options_.port);
    if (is_unavailable_errno(err))
      throw NetError(NetErrc::kBusy, "server unavailable at " + where + " (" +
                                         std::strerror(err) + ")");
    throw NetError(NetErrc::kIoError,
                   "connect to " + where + ": " + std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Frame Client::call(MsgType type, std::span<const std::uint8_t> payload) {
  if (fd_ < 0)
    throw NetError(NetErrc::kConnectionClosed, "client connection is closed");

  using Clock = std::chrono::steady_clock;
  std::optional<Clock::time_point> deadline;
  std::uint32_t deadline_ms = 0;
  if (options_.deadline.count() > 0) {
    deadline = Clock::now() + options_.deadline;
    deadline_ms = static_cast<std::uint32_t>(options_.deadline.count());
  }

  const std::uint64_t request_id = next_id_++;
  const auto bytes = encode_frame(type, request_id, deadline_ms, payload);
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    const auto n = ::send(fd_, bytes.data() + offset, bytes.size() - offset,
                          MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET)
        throw NetError(NetErrc::kConnectionClosed,
                       "server closed the connection mid-request");
      throw NetError(NetErrc::kIoError, errno_text("send"));
    }
    offset += static_cast<std::size_t>(n);
  }

  std::vector<std::uint8_t> buffer(64 * 1024);
  for (;;) {
    if (auto frame = decoder_.next()) {
      if (frame->header.request_id != request_id)
        throw NetError(NetErrc::kMalformedPayload,
                       "response for a different request id");
      if (frame->header.type == MsgType::kError) {
        const auto error = ErrorResponse::decode(frame->payload);
        throw RemoteError(frame->header.status, error.message);
      }
      return std::move(*frame);
    }

    int timeout_ms = -1;
    if (deadline) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(*deadline - Clock::now());
      if (remaining.count() <= 0)
        throw NetError(NetErrc::kDeadlineExceeded,
                       "no response within the deadline");
      timeout_ms = static_cast<int>(remaining.count());
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw NetError(NetErrc::kIoError, errno_text("poll"));
    }
    if (rc == 0)
      throw NetError(NetErrc::kDeadlineExceeded,
                     "no response within the deadline");
    const auto n = ::recv(fd_, buffer.data(), buffer.size(), 0);
    if (n == 0)
      throw NetError(NetErrc::kConnectionClosed,
                     decoder_.buffered() > 0
                         ? "server hung up mid-frame"
                         : "server closed the connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (errno == ECONNRESET)
        throw NetError(NetErrc::kConnectionClosed,
                       "connection reset by the server");
      throw NetError(NetErrc::kIoError, errno_text("recv"));
    }
    decoder_.feed({buffer.data(), static_cast<std::size_t>(n)});
  }
}

EncodeResponse Client::encode(const EncodeRequest& request) {
  const Frame frame = call(MsgType::kEncode, request.encode());
  if (frame.header.type != MsgType::kEncodeResult)
    throw NetError(NetErrc::kMalformedPayload, "expected an encode result");
  return EncodeResponse::decode(frame.payload);
}

DecodeResponse Client::decode(const DecodeRequest& request) {
  const Frame frame = call(MsgType::kDecode, request.encode());
  if (frame.header.type != MsgType::kDecodeResult)
    throw NetError(NetErrc::kMalformedPayload, "expected a decode result");
  return DecodeResponse::decode(frame.payload);
}

VerifyResponse Client::verify(const VerifyRequest& request) {
  const Frame frame = call(MsgType::kVerify, request.encode());
  if (frame.header.type != MsgType::kVerifyResult)
    throw NetError(NetErrc::kMalformedPayload, "expected a verify result");
  return VerifyResponse::decode(frame.payload);
}

StatsResponse Client::stats() {
  const Frame frame = call(MsgType::kStats, {});
  if (frame.header.type != MsgType::kStatsResult)
    throw NetError(NetErrc::kMalformedPayload, "expected a stats result");
  return StatsResponse::decode(frame.payload);
}

void Client::ping() {
  const Frame frame = call(MsgType::kPing, {});
  if (frame.header.type != MsgType::kPong)
    throw NetError(NetErrc::kMalformedPayload, "expected a pong");
}

}  // namespace rmp::net
