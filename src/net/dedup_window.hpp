// Bounded idempotency window: request-token -> cached response, FIFO
// evicted.  The server half of exactly-once retries (DESIGN.md §14): a
// client retrying a tokened request after a timeout, reconnect, or
// daemon restart gets the original outcome replayed instead of the
// side-effect re-executed.  For durable sequence appends the entries are
// additionally rebuilt at startup from the fsync'd request log, so the
// window survives a SIGKILL; for stateless responses it is in-memory
// only (a restart forgets them -- re-execution is then harmless because
// those requests carry no server-side state).
//
// The window is bounded by construction: eviction is strictly FIFO by
// insertion order, so memory is O(capacity * response size) no matter
// how many tokens a client burns.  An evicted token's retry re-executes
// -- the documented contract is exactly-once only while the token is
// within the window (capacity is a server flag; retries arrive within
// seconds, eviction takes thousands of intervening requests).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/protocol.hpp"
#include "obs/obs.hpp"

namespace rmp::net {

class DedupWindow {
 public:
  struct CachedResponse {
    MsgType type = MsgType::kError;
    Status status = Status::kOk;
    std::vector<std::uint8_t> payload;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
  };

  explicit DedupWindow(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  DedupWindow(const DedupWindow&) = delete;
  DedupWindow& operator=(const DedupWindow&) = delete;

  /// The completed outcome for `token`, if still within the window.
  /// Counts a hit -- callers replay the response verbatim.
  std::optional<CachedResponse> lookup(std::uint64_t token) {
    if (token == 0) return std::nullopt;
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(token);
    if (it == entries_.end()) return std::nullopt;
    ++hits_;
    obs::count("net.dedup.hits");
    return it->second;
  }

  /// Record `token`'s outcome, evicting the oldest entry when full.  A
  /// re-insert of a live token refreshes the payload without growing the
  /// window.
  void insert(std::uint64_t token, CachedResponse response) {
    if (token == 0) return;
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(token);
    if (it != entries_.end()) {
      it->second = std::move(response);
      return;
    }
    while (entries_.size() >= capacity_ && !order_.empty()) {
      entries_.erase(order_.front());
      order_.pop_front();
      ++evictions_;
      obs::count("net.dedup.evictions");
    }
    order_.push_back(token);
    entries_.emplace(token, std::move(response));
  }

  Stats stats() const {
    std::lock_guard lock(mutex_);
    return {hits_, evictions_, entries_.size()};
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, CachedResponse> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace rmp::net
