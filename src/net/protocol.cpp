#include "net/protocol.hpp"

#include <cstring>
#include <limits>

#include "io/checksum.hpp"

namespace rmp::net {
namespace {

// Caps on variable-length payload members, enforced on read so a hostile
// length field can never drive an allocation past the frame it arrived in.
constexpr std::size_t kMaxNameBytes = 256;        ///< method/codec names
constexpr std::size_t kMaxStoreNameBytes = 4096;  ///< archive/sequence names
constexpr std::size_t kMaxMessageBytes = 1u << 16;
constexpr std::size_t kMaxDetailBytes = 1u << 20;

void store_le16(std::uint8_t* out, std::uint16_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}
void store_le32(std::uint8_t* out, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void store_le64(std::uint8_t* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint16_t load_le16(const std::uint8_t* in) noexcept {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}
std::uint32_t load_le32(const std::uint8_t* in) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}
std::uint64_t load_le64(const std::uint8_t* in) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

/// Append-only payload builder.
class PayloadWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    std::uint8_t buf[4];
    store_le32(buf, v);
    out_.insert(out_.end(), buf, buf + 4);
  }
  void u64(std::uint64_t v) {
    std::uint8_t buf[8];
    store_le64(buf, v);
    out_.insert(out_.end(), buf, buf + 8);
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void bytes(std::span<const std::uint8_t> b) {
    u64(b.size());
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void doubles(std::span<const double> d) {
    u64(d.size());
    const std::size_t at = out_.size();
    out_.resize(at + d.size() * sizeof(double));
    for (std::size_t i = 0; i < d.size(); ++i) {
      std::uint64_t bits;
      std::memcpy(&bits, &d[i], sizeof(bits));
      store_le64(out_.data() + at + i * sizeof(double), bits);
    }
  }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked payload reader; every violation is a typed
/// NetError{kMalformedPayload} naming what failed.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1, "u8");
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4, "u32");
    const std::uint32_t v = load_le32(bytes_.data() + pos_);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8, "u64");
    const std::uint64_t v = load_le64(bytes_.data() + pos_);
    pos_ += 8;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str(std::size_t max_bytes) {
    const std::uint32_t size = u32();
    if (size > max_bytes) {
      throw NetError(NetErrc::kMalformedPayload,
                     "string length " + std::to_string(size) +
                         " exceeds cap " + std::to_string(max_bytes));
    }
    need(size, "string body");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), size);
    pos_ += size;
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint64_t size = u64();
    need(size, "byte-array body");
    std::vector<std::uint8_t> b(bytes_.begin() + static_cast<long>(pos_),
                                bytes_.begin() + static_cast<long>(pos_ + size));
    pos_ += size;
    return b;
  }
  std::vector<double> doubles() {
    const std::uint64_t count = u64();
    // The count is validated against the *remaining bytes* before any
    // allocation, so a hostile length cannot trigger OOM.
    if (count > (bytes_.size() - pos_) / sizeof(double)) {
      throw NetError(NetErrc::kMalformedPayload,
                     "double-array count " + std::to_string(count) +
                         " exceeds remaining payload");
    }
    std::vector<double> d(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t bits = load_le64(bytes_.data() + pos_);
      std::memcpy(&d[i], &bits, sizeof(double));
      pos_ += sizeof(double);
    }
    return d;
  }
  /// Every payload parser must end with this: trailing garbage is as
  /// malformed as a truncation.
  void finish() const {
    if (pos_ != bytes_.size()) {
      throw NetError(NetErrc::kMalformedPayload,
                     std::to_string(bytes_.size() - pos_) +
                         " trailing byte(s) after payload");
    }
  }

 private:
  void need(std::uint64_t n, const char* what) const {
    if (n > bytes_.size() - pos_) {
      throw NetError(NetErrc::kMalformedPayload,
                     std::string("payload truncated reading ") + what);
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

bool is_known_type(std::uint16_t type) noexcept {
  return type >= static_cast<std::uint16_t>(MsgType::kPing) &&
         type <= static_cast<std::uint16_t>(MsgType::kScrubResult);
}

bool is_request_type(MsgType type) noexcept {
  switch (type) {
    case MsgType::kPing:
    case MsgType::kEncode:
    case MsgType::kDecode:
    case MsgType::kVerify:
    case MsgType::kStats:
    case MsgType::kScrub:
      return true;
    default:
      return false;
  }
}

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kEncode: return "encode";
    case MsgType::kDecode: return "decode";
    case MsgType::kVerify: return "verify";
    case MsgType::kStats: return "stats";
    case MsgType::kEncodeResult: return "encode-result";
    case MsgType::kDecodeResult: return "decode-result";
    case MsgType::kVerifyResult: return "verify-result";
    case MsgType::kStatsResult: return "stats-result";
    case MsgType::kError: return "error";
    case MsgType::kScrub: return "scrub";
    case MsgType::kScrubResult: return "scrub-result";
  }
  return "unknown";
}

const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kBusy: return "busy";
    case Status::kShuttingDown: return "shutting-down";
    case Status::kDeadlineExceeded: return "deadline-exceeded";
    case Status::kBadRequest: return "bad-request";
    case Status::kIntegrityError: return "integrity-error";
    case Status::kPreconditionError: return "precondition-error";
    case Status::kIoError: return "io-error";
    case Status::kInternalError: return "internal-error";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Frame encode/decode

std::vector<std::uint8_t> encode_frame(MsgType type, std::uint64_t request_id,
                                       std::uint32_t deadline_ms,
                                       std::span<const std::uint8_t> payload,
                                       Status status) {
  std::vector<std::uint8_t> out(kFrameHeaderBytes + payload.size());
  std::memcpy(out.data(), kMagic, 4);
  store_le16(out.data() + 4, kProtocolVersion);
  store_le16(out.data() + 6, static_cast<std::uint16_t>(type));
  store_le16(out.data() + 8, static_cast<std::uint16_t>(status));
  store_le16(out.data() + 10, 0);  // reserved
  store_le64(out.data() + 12, request_id);
  store_le32(out.data() + 20, deadline_ms);
  store_le32(out.data() + 24, static_cast<std::uint32_t>(payload.size()));
  store_le32(out.data() + 28, payload.empty() ? 0u : io::crc32(payload));
  store_le32(out.data() + 32, io::crc32({out.data(), 32}));
  std::memcpy(out.data() + kFrameHeaderBytes, payload.data(), payload.size());
  return out;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  // Compact before growing: a long session must not accumulate every
  // consumed frame in memory.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10)) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

FrameHeader FrameDecoder::parse_header() {
  const std::uint8_t* h = buffer_.data() + consumed_;
  if (std::memcmp(h, kMagic, 4) != 0) {
    throw NetError(NetErrc::kBadMagic, "frame does not start with RMPN");
  }
  const std::uint32_t header_crc = load_le32(h + 32);
  if (io::crc32({h, 32}) != header_crc) {
    throw NetError(NetErrc::kHeaderCorrupt, "frame header CRC mismatch");
  }
  const std::uint16_t version = load_le16(h + 4);
  if (version != kProtocolVersion) {
    throw NetError(NetErrc::kBadVersion,
                   "protocol version " + std::to_string(version) +
                       " (this peer speaks " +
                       std::to_string(kProtocolVersion) + ")");
  }
  const std::uint16_t raw_type = load_le16(h + 6);
  if (!is_known_type(raw_type)) {
    throw NetError(NetErrc::kBadType,
                   "unknown message type " + std::to_string(raw_type));
  }
  if (load_le16(h + 10) != 0) {
    throw NetError(NetErrc::kHeaderCorrupt, "reserved header bits set");
  }
  FrameHeader header;
  header.version = version;
  header.type = static_cast<MsgType>(raw_type);
  header.status = static_cast<Status>(load_le16(h + 8));
  header.request_id = load_le64(h + 12);
  header.deadline_ms = load_le32(h + 20);
  header.payload_size = load_le32(h + 24);
  if (header.payload_size > max_payload_) {
    throw NetError(NetErrc::kFrameTooLarge,
                   "declared payload of " +
                       std::to_string(header.payload_size) +
                       " bytes exceeds cap of " +
                       std::to_string(max_payload_));
  }
  pending_payload_crc_ = load_le32(h + 28);
  return header;
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) {
    throw NetError(NetErrc::kHeaderCorrupt,
                   "decoder poisoned by an earlier protocol error");
  }
  try {
    if (!pending_) {
      if (buffer_.size() - consumed_ < kFrameHeaderBytes) return std::nullopt;
      pending_ = parse_header();
      consumed_ += kFrameHeaderBytes;
    }
    if (buffer_.size() - consumed_ < pending_->payload_size) {
      return std::nullopt;
    }
    Frame frame;
    frame.header = *pending_;
    frame.payload.assign(
        buffer_.begin() + static_cast<long>(consumed_),
        buffer_.begin() + static_cast<long>(consumed_ + pending_->payload_size));
    consumed_ += pending_->payload_size;
    pending_.reset();
    const std::uint32_t crc =
        frame.payload.empty() ? 0u : io::crc32(frame.payload);
    if (crc != pending_payload_crc_) {
      throw NetError(NetErrc::kPayloadCorrupt, "payload CRC mismatch");
    }
    return frame;
  } catch (const NetError&) {
    poisoned_ = true;
    throw;
  }
}

// ---------------------------------------------------------------------------
// Payload codecs

std::vector<std::uint8_t> EncodeRequest::encode() const {
  PayloadWriter w;
  w.str(method);
  w.str(codec);
  w.u8(guard ? 1 : 0);
  w.u8(error_bound ? 1 : 0);
  w.f64(error_bound.value_or(0.0));
  w.u8(static_cast<std::uint8_t>(store));
  w.str(store_name);
  w.u64(nx);
  w.u64(ny);
  w.u64(nz);
  w.u64(request_token);
  w.doubles(data);
  return w.take();
}

EncodeRequest EncodeRequest::decode(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  EncodeRequest req;
  req.method = r.str(kMaxNameBytes);
  req.codec = r.str(kMaxNameBytes);
  req.guard = r.u8() != 0;
  const bool has_bound = r.u8() != 0;
  const double bound = r.f64();
  if (has_bound) req.error_bound = bound;
  const std::uint8_t store = r.u8();
  if (store > static_cast<std::uint8_t>(StoreMode::kSequence)) {
    throw NetError(NetErrc::kMalformedPayload,
                   "unknown store mode " + std::to_string(store));
  }
  req.store = static_cast<StoreMode>(store);
  req.store_name = r.str(kMaxStoreNameBytes);
  req.nx = r.u64();
  req.ny = r.u64();
  req.nz = r.u64();
  req.request_token = r.u64();
  req.data = r.doubles();
  r.finish();
  if (req.nx == 0 || req.ny == 0 || req.nz == 0) {
    throw NetError(NetErrc::kMalformedPayload, "zero grid dimension");
  }
  // Overflow-safe shape check: count is bounded by the payload already.
  if (req.data.size() / req.ny / req.nz != req.nx ||
      req.nx * req.ny * req.nz != req.data.size()) {
    throw NetError(NetErrc::kMalformedPayload,
                   "data count does not match nx*ny*nz");
  }
  if ((req.store == StoreMode::kFile || req.store == StoreMode::kSequence) &&
      req.store_name.empty()) {
    throw NetError(NetErrc::kMalformedPayload, "store request without a name");
  }
  return req;
}

std::vector<std::uint8_t> EncodeResponse::encode() const {
  PayloadWriter w;
  w.str(method);
  w.u64(original_bytes);
  w.u64(stored_bytes);
  w.u8(stored ? 1 : 0);
  w.str(stored_path);
  w.bytes(container);
  return w.take();
}

EncodeResponse EncodeResponse::decode(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  EncodeResponse resp;
  resp.method = r.str(kMaxNameBytes);
  resp.original_bytes = r.u64();
  resp.stored_bytes = r.u64();
  resp.stored = r.u8() != 0;
  resp.stored_path = r.str(kMaxStoreNameBytes);
  resp.container = r.bytes();
  r.finish();
  return resp;
}

std::vector<std::uint8_t> DecodeRequest::encode() const {
  PayloadWriter w;
  w.str(codec);
  w.u8(best_effort ? 1 : 0);
  w.str(store_name);
  w.u64(step);
  w.bytes(container);
  return w.take();
}

DecodeRequest DecodeRequest::decode(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  DecodeRequest req;
  req.codec = r.str(kMaxNameBytes);
  req.best_effort = r.u8() != 0;
  req.store_name = r.str(kMaxStoreNameBytes);
  req.step = r.u64();
  req.container = r.bytes();
  r.finish();
  if (!req.store_name.empty() && !req.container.empty()) {
    throw NetError(NetErrc::kMalformedPayload,
                   "decode request carries both inline bytes and a store "
                   "name; pick one");
  }
  return req;
}

std::vector<std::uint8_t> DecodeResponse::encode() const {
  PayloadWriter w;
  w.u64(nx);
  w.u64(ny);
  w.u64(nz);
  w.str(detail);
  w.doubles(data);
  return w.take();
}

DecodeResponse DecodeResponse::decode(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  DecodeResponse resp;
  resp.nx = r.u64();
  resp.ny = r.u64();
  resp.nz = r.u64();
  resp.detail = r.str(kMaxDetailBytes);
  resp.data = r.doubles();
  r.finish();
  return resp;
}

std::vector<std::uint8_t> VerifyRequest::encode() const {
  PayloadWriter w;
  w.bytes(container);
  return w.take();
}

VerifyRequest VerifyRequest::decode(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  VerifyRequest req;
  req.container = r.bytes();
  r.finish();
  return req;
}

std::vector<std::uint8_t> VerifyResponse::encode() const {
  PayloadWriter w;
  w.u8(complete ? 1 : 0);
  w.u8(repaired ? 1 : 0);
  w.u32(version);
  w.str(detail);
  return w.take();
}

VerifyResponse VerifyResponse::decode(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  VerifyResponse resp;
  resp.complete = r.u8() != 0;
  resp.repaired = r.u8() != 0;
  resp.version = r.u32();
  resp.detail = r.str(kMaxDetailBytes);
  r.finish();
  return resp;
}

std::vector<std::uint8_t> ScrubResponse::encode() const {
  PayloadWriter w;
  w.u64(files_checked);
  w.u64(sections_checked);
  w.u64(sections_repaired);
  w.u64(files_repaired);
  w.u64(files_quarantined);
  w.str(detail);
  return w.take();
}

ScrubResponse ScrubResponse::decode(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  ScrubResponse resp;
  resp.files_checked = r.u64();
  resp.sections_checked = r.u64();
  resp.sections_repaired = r.u64();
  resp.files_repaired = r.u64();
  resp.files_quarantined = r.u64();
  resp.detail = r.str(kMaxDetailBytes);
  r.finish();
  return resp;
}

std::vector<std::uint8_t> StatsResponse::encode() const {
  PayloadWriter w;
  w.u64(queue_depth);
  w.u64(queue_capacity);
  w.u64(accepted);
  w.u64(rejected_busy);
  w.u64(rejected_shutdown);
  w.u64(deadline_missed);
  w.u64(completed);
  w.u64(failed);
  w.u64(sessions_active);
  w.u64(sessions_total);
  w.u64(protocol_errors);
  w.u64(recovery_journals_resumed);
  w.u64(recovery_steps_recovered);
  w.u64(recovery_files_repaired);
  w.u64(recovery_files_quarantined);
  w.u64(scrub_passes);
  w.u64(scrub_sections_checked);
  w.u64(scrub_sections_repaired);
  w.u64(scrub_quarantined);
  w.u64(dedup_hits);
  w.u64(dedup_evictions);
  w.u64(dedup_entries);
  w.u64(inflight_bytes);
  w.u64(max_inflight_bytes);
  w.u64(admission_bytes_rejected);
  w.u64(stalled_sessions);
  w.str(obs_json);
  return w.take();
}

StatsResponse StatsResponse::decode(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  StatsResponse resp;
  resp.queue_depth = r.u64();
  resp.queue_capacity = r.u64();
  resp.accepted = r.u64();
  resp.rejected_busy = r.u64();
  resp.rejected_shutdown = r.u64();
  resp.deadline_missed = r.u64();
  resp.completed = r.u64();
  resp.failed = r.u64();
  resp.sessions_active = r.u64();
  resp.sessions_total = r.u64();
  resp.protocol_errors = r.u64();
  resp.recovery_journals_resumed = r.u64();
  resp.recovery_steps_recovered = r.u64();
  resp.recovery_files_repaired = r.u64();
  resp.recovery_files_quarantined = r.u64();
  resp.scrub_passes = r.u64();
  resp.scrub_sections_checked = r.u64();
  resp.scrub_sections_repaired = r.u64();
  resp.scrub_quarantined = r.u64();
  resp.dedup_hits = r.u64();
  resp.dedup_evictions = r.u64();
  resp.dedup_entries = r.u64();
  resp.inflight_bytes = r.u64();
  resp.max_inflight_bytes = r.u64();
  resp.admission_bytes_rejected = r.u64();
  resp.stalled_sessions = r.u64();
  resp.obs_json = r.str(kMaxDetailBytes * 16);
  r.finish();
  return resp;
}

std::vector<std::uint8_t> ErrorResponse::encode() const {
  PayloadWriter w;
  w.str(message);
  w.u32(retry_after_ms);
  return w.take();
}

ErrorResponse ErrorResponse::decode(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  ErrorResponse resp;
  resp.message = r.str(kMaxMessageBytes);
  resp.retry_after_ms = r.u32();
  r.finish();
  return resp;
}

}  // namespace rmp::net
