// rmpd -- the fault-tolerant concurrent compression service (DESIGN.md
// §11).  A TCP daemon serving encode/decode/verify/stats requests over
// the length-prefixed binary protocol in net/protocol.hpp, built for the
// in-situ HPC setting where the compressor sits on the simulation's
// critical path and must keep accepting fields even when clients
// misbehave, disks stall, or the process is killed.
//
// Robustness model:
//  * Admission control: every work request passes through a bounded
//    queue (net/bounded_queue.hpp).  A full queue is answered with a
//    typed BUSY rejection immediately -- the server never buffers
//    unboundedly and a slow disk cannot OOM it.
//  * Deadlines end-to-end: the client grants a wall-clock budget per
//    request; the server stamps an absolute deadline on receipt, refuses
//    to *start* work past it, and threads it into io::RetryPolicy so
//    disk-retry backoff loops cannot outlive the request.
//  * Connection-level fault tolerance: torn frames, oversized or garbage
//    headers, CRC mismatches and mid-request disconnects produce typed
//    errors and a clean session teardown -- never a crash or a leaked
//    worker thread.
//  * Self-healing (DESIGN.md §14): startup recovery resumes torn
//    sequence journals and quarantines what cannot be made whole; a
//    background scrubber re-verifies published archives and repairs
//    parity-recoverable damage; tokened requests are deduplicated
//    through a bounded window backed by an fsync'd intent log, so a
//    retry -- even across a SIGKILL -- applies exactly once.
//  * Graceful drain: request_drain() (wired to SIGTERM by run_daemon)
//    stops accepting, answers new requests with SHUTTING_DOWN, finishes
//    every admitted request, flushes journaled sequences via the
//    durable-publish path, then returns.  A SIGKILL instead leaves no
//    torn archives: stored containers are atomic publishes and sequence
//    appends are fsync'd behind commit markers (DESIGN.md §10).
//
// Work placement: session threads only parse frames and do admission;
// compute runs on a small set of worker threads that fan numeric kernels
// out onto parallel::global_pool, and durable store writes ride the
// reused core::StagingNode write-behind worker, whose completion
// callback is what releases the client's response -- a store request is
// only ever answered after its bytes are durable.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/bounded_queue.hpp"
#include "net/dedup_window.hpp"
#include "net/protocol.hpp"

namespace rmp::compress {
class Compressor;
}
namespace rmp::core {
class StagingNode;
}
namespace rmp::io {
class SequenceWriter;
}

namespace rmp::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see Server::port()
  /// Admission bound: requests queued awaiting a worker.  Beyond this,
  /// clients get typed BUSY rejections.
  std::size_t queue_capacity = 64;
  /// Dedicated compute workers popping the request queue (each fans out
  /// onto parallel::global_pool); 0 = min(4, default_thread_count()).
  std::size_t workers = 0;
  /// Concurrent sessions; connections beyond this are answered with a
  /// BUSY frame and closed.
  std::size_t max_sessions = 64;
  /// Enables kFile/kSequence store requests; unset = bytes-only service.
  std::optional<std::filesystem::path> output_dir;
  /// Parity protection for stored archives.
  bool with_parity = true;
  /// Write-behind queue depth for store requests (StagingNode bound).
  std::size_t staging_queue = 8;
  /// Test hook: hold each worker for this long before it starts a job,
  /// so saturation/deadline behaviour is deterministic under test.
  std::chrono::milliseconds debug_stall{0};
  /// Byte-budget admission: total request-payload bytes in flight
  /// (queued + executing).  A request that would exceed it gets a typed
  /// BUSY with a retry_after_ms hint instead of being buffered -- the
  /// second shedding axis next to queue_capacity (counts requests, this
  /// counts bytes).  0 = unlimited.
  std::uint64_t max_inflight_bytes = 256ull << 20;
  /// Slowloris defense: a session holding a half-read frame without
  /// delivering a byte for this long is torn down.  0 disables.
  std::chrono::milliseconds read_stall_timeout{30'000};
  /// Idempotency window: completed request tokens whose responses are
  /// cached for replay (net/dedup_window.hpp).
  std::size_t dedup_window = 256;
  /// Background integrity-scrub cadence over output_dir; 0 = on-demand
  /// only (rmpc client scrub).
  std::chrono::milliseconds scrub_interval{0};
  /// Run startup recovery over output_dir before accepting: resume torn
  /// journals, verify/repair/quarantine published files, reload the
  /// dedup window's durable intents (io/store_health.hpp).
  bool recover_on_start = true;
};

/// Monotonic counters (authoritative, independent of RMP_OBS).
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_busy = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t deadline_missed = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t sessions_total = 0;
  std::uint64_t sessions_active = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t send_failures = 0;
  // Self-healing (DESIGN.md §14).
  std::uint64_t recovery_journals_resumed = 0;
  std::uint64_t recovery_steps_recovered = 0;
  std::uint64_t recovery_files_repaired = 0;
  std::uint64_t recovery_files_quarantined = 0;
  std::uint64_t scrub_passes = 0;
  std::uint64_t scrub_sections_checked = 0;
  std::uint64_t scrub_sections_repaired = 0;
  std::uint64_t scrub_quarantined = 0;
  std::uint64_t admission_bytes_rejected = 0;
  std::uint64_t stalled_sessions = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  /// Joins everything; drains first if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start accepting.  Throws NetError{kIoError} when the
  /// socket cannot be bound.
  void start();

  /// The actually-bound port (useful with options.port == 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Async-signal-safe-ish drain trigger: flips the draining flag and
  /// wakes the accept loop.  Returns immediately; pair with drain() or
  /// wait_until_drained().
  void request_drain() noexcept;

  /// Graceful shutdown: stop accepting, answer queued-but-unstarted and
  /// new requests per the drain policy, finish all admitted work, flush
  /// and publish journaled sequences, tear down sessions.  Idempotent.
  void drain();

  /// Block until someone (a signal handler, another thread) calls
  /// request_drain(), then perform the drain.
  void wait_until_drained();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  ServerStats stats() const;
  std::size_t queue_depth() const { return queue_.depth(); }

 private:
  struct Session;
  struct SequenceState;
  struct Job {
    Frame frame;
    std::shared_ptr<Session> session;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /// Payload bytes charged against max_inflight_bytes; released by
    /// job_finished.
    std::uint64_t bytes = 0;
  };

  void accept_loop();
  void session_loop(const std::shared_ptr<Session>& session);
  void worker_loop();
  void scrub_loop();
  void handle_frame(const std::shared_ptr<Session>& session, Frame frame);
  void process_job(Job& job);
  void handle_encode(Job& job);
  void handle_decode(Job& job);
  void handle_verify(Job& job);
  void handle_scrub(Job& job);
  /// One verify/repair/quarantine pass over the store, skipping live
  /// sequences; folds the result into stats_.  Returns the wire summary.
  ScrubResponse run_scrub_pass();
  /// Startup recovery over output_dir (start() calls this before
  /// accepting): adopt resumed journals, seed the dedup window.
  void recover_store_on_start();
  void send_stats(const std::shared_ptr<Session>& session,
                  std::uint64_t request_id);
  void send_error(const std::shared_ptr<Session>& session,
                  std::uint64_t request_id, Status status,
                  const std::string& message, std::uint32_t retry_after_ms = 0);
  void send_frame(const std::shared_ptr<Session>& session, MsgType type,
                  std::uint64_t request_id,
                  std::span<const std::uint8_t> payload,
                  Status status = Status::kOk);
  /// Backoff hint attached to BUSY rejections, scaled by current load.
  std::uint32_t retry_after_hint() const noexcept;
  /// Caller must hold sequences_mutex_.
  SequenceState& sequence_state(const std::string& name);
  void finish_sequences();
  /// Shared seekable reader + chunk fetcher for a published sequence
  /// archive under the output dir.  Returns nullptr when the file is not
  /// a sequence archive (plain container store).  Entries are rebuilt
  /// when the published file's size changes (a writer re-published it).
  std::shared_ptr<struct StoreReadCache> store_read_cache(
      const std::string& name, const std::filesystem::path& path);
  /// Completes one admitted job: accounts the outcome, releases its byte
  /// budget, and drops outstanding_.
  void job_finished(bool ok, std::uint64_t bytes);
  void release_outstanding();

  ServerOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_sessions_{false};
  std::atomic<bool> drained_{false};

  BoundedQueue<Job> queue_;
  std::vector<std::thread> workers_;
  std::thread accept_thread_;

  std::mutex sessions_mutex_;
  std::vector<std::shared_ptr<Session>> sessions_;
  std::uint64_t session_counter_ = 0;  ///< under sessions_mutex_

  /// Outstanding admitted jobs (queued + executing + awaiting the staging
  /// callback); drain() waits for this to hit zero.
  std::atomic<std::uint64_t> outstanding_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::mutex drain_call_mutex_;  ///< serializes drain() itself

  /// Codecs backing the staging node (CodecPair holds raw pointers).
  std::unique_ptr<compress::Compressor> staging_reduced_;
  std::unique_ptr<compress::Compressor> staging_delta_;
  std::unique_ptr<core::StagingNode> staging_;
  std::mutex sequences_mutex_;
  /// Writer + request log per live sequence.  The dedup check, intent
  /// record, append, and window insert for one sequence all run under
  /// sequences_mutex_, which is what coalesces concurrent duplicates of
  /// the same tokened append.
  std::map<std::string, std::unique_ptr<SequenceState>> sequences_;
  /// Store-read side (decode-from-store requests): one shared reader +
  /// fetcher per published sequence, so concurrent decode requests hit
  /// the chunk cache instead of re-reading the archive.
  std::mutex store_readers_mutex_;
  std::map<std::string, std::shared_ptr<struct StoreReadCache>>
      store_readers_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;

  /// Idempotent-retry window (tokened requests).
  DedupWindow dedup_;
  /// Request-payload bytes admitted and not yet completed.
  std::atomic<std::uint64_t> inflight_bytes_{0};

  /// Background integrity scrubber (options_.scrub_interval > 0).
  std::thread scrub_thread_;
  std::mutex scrub_mutex_;
  std::condition_variable scrub_cv_;
  bool scrub_stop_ = false;
};

/// Daemon front end shared by `rmpd` and `rmpc serve`: installs
/// SIGTERM/SIGINT handlers that trigger a graceful drain, ignores
/// SIGPIPE, starts the server, announces "rmpd: listening on HOST:PORT"
/// on stdout (and writes the port to `port_file` when given, for test
/// harnesses that pass port 0), then blocks until drained.  Returns the
/// process exit code (0 after a clean drain).
int run_daemon(const ServerOptions& options,
               const std::optional<std::filesystem::path>& port_file = {});

/// Parse shared daemon flags ("--port N", "--bind ADDR", "--queue N",
/// "--workers N", "--max-sessions N", "--output-dir DIR", "--no-parity",
/// "--staging-queue N", "--port-file PATH", "--max-bytes N",
/// "--read-timeout-ms N", "--dedup-window N", "--scrub-interval-ms N",
/// "--no-recover") from argv-style args.
/// Returns an error message naming the offending flag, or std::nullopt on
/// success.  Unrecognized flags are left for the caller in `unparsed`.
std::optional<std::string> parse_server_flags(
    const std::vector<std::string>& args, ServerOptions& options,
    std::optional<std::filesystem::path>& port_file,
    std::vector<std::string>* unparsed = nullptr);

}  // namespace rmp::net
