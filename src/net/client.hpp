// Blocking rmpd client: one TCP connection, synchronous request/response
// round trips, with the request deadline enforced on *both* sides -- it
// travels in the frame header for the server to honor, and the client's
// own receive loop gives up (NetError{kDeadlineExceeded}) when the budget
// runs out locally, so a hung server cannot wedge the caller.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>

#include "net/protocol.hpp"

namespace rmp::net {

/// A failure the *server* reported (an kError frame), carrying the wire
/// Status so callers -- the rmpc exit-code table above all -- can map the
/// rejection class without string-matching.
class RemoteError : public NetError {
 public:
  RemoteError(Status status, const std::string& detail,
              std::uint32_t retry_after_ms = 0)
      : NetError(status_to_errc(status), detail),
        status_(status),
        retry_after_ms_(retry_after_ms) {}

  Status status() const noexcept { return status_; }

  /// Server's backoff hint from a BUSY rejection (0 = none given).  The
  /// client's own retry loop honors it; callers doing manual retries
  /// should too.
  std::uint32_t retry_after_ms() const noexcept { return retry_after_ms_; }

  static NetErrc status_to_errc(Status status) noexcept {
    switch (status) {
      case Status::kBusy: return NetErrc::kBusy;
      case Status::kShuttingDown: return NetErrc::kShuttingDown;
      case Status::kDeadlineExceeded: return NetErrc::kDeadlineExceeded;
      default: return NetErrc::kRemoteError;
    }
  }

 private:
  Status status_;
  std::uint32_t retry_after_ms_ = 0;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Wall-clock budget per *attempt* of call(); zero = unbounded.  Sent
  /// to the server as the frame's deadline_ms and enforced locally on
  /// the receive path.
  std::chrono::milliseconds deadline{0};
  std::size_t max_payload = kDefaultMaxPayload;
  /// Extra attempts after a retryable failure (BUSY, SHUTTING_DOWN,
  /// connection lost / refused).  0 = the historical fail-fast client.
  /// Retries reconnect the socket and re-send under the *same* request
  /// id; pair with a nonzero request_token (Client::encode generates
  /// one automatically when retries are on) so a sequence append is
  /// applied exactly once even if the first attempt actually landed.
  std::size_t max_retries = 0;
  /// Backoff base for attempt N: min(retry_backoff << N, 2s), raised to
  /// the server's retry_after_ms hint when one arrived with the BUSY.
  std::chrono::milliseconds retry_backoff{50};
};

class Client {
 public:
  /// Connects eagerly.  ECONNREFUSED (and friends) throw
  /// NetError{kBusy}: "server unavailable" is the same exit-code class as
  /// a BUSY rejection -- retry later.  Other socket failures are
  /// NetError{kIoError}.
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One logical request/response round trip: up to 1 + max_retries
  /// attempts, reconnecting between them.  Throws RemoteError for
  /// kError frames, NetError{kDeadlineExceeded} on a local timeout,
  /// NetError{kConnectionClosed} when the server hangs up mid-response
  /// -- after retries, if any, are exhausted.
  Frame call(MsgType type, std::span<const std::uint8_t> payload);

  EncodeResponse encode(const EncodeRequest& request);
  DecodeResponse decode(const DecodeRequest& request);
  VerifyResponse verify(const VerifyRequest& request);
  StatsResponse stats();
  ScrubResponse scrub();
  void ping();

  /// A fresh nonzero idempotency token (process-wide PRNG).  Exposed so
  /// callers doing their own retry orchestration can mint tokens the
  /// same way Client::encode does.
  static std::uint64_t make_request_token();

 private:
  void connect_socket();
  void reconnect();
  Frame call_once(MsgType type, std::uint64_t request_id,
                  std::span<const std::uint8_t> payload);

  ClientOptions options_;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  FrameDecoder decoder_;
};

}  // namespace rmp::net
