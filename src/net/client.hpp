// Blocking rmpd client: one TCP connection, synchronous request/response
// round trips, with the request deadline enforced on *both* sides -- it
// travels in the frame header for the server to honor, and the client's
// own receive loop gives up (NetError{kDeadlineExceeded}) when the budget
// runs out locally, so a hung server cannot wedge the caller.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>

#include "net/protocol.hpp"

namespace rmp::net {

/// A failure the *server* reported (an kError frame), carrying the wire
/// Status so callers -- the rmpc exit-code table above all -- can map the
/// rejection class without string-matching.
class RemoteError : public NetError {
 public:
  RemoteError(Status status, const std::string& detail)
      : NetError(status_to_errc(status), detail), status_(status) {}

  Status status() const noexcept { return status_; }

  static NetErrc status_to_errc(Status status) noexcept {
    switch (status) {
      case Status::kBusy: return NetErrc::kBusy;
      case Status::kShuttingDown: return NetErrc::kShuttingDown;
      case Status::kDeadlineExceeded: return NetErrc::kDeadlineExceeded;
      default: return NetErrc::kRemoteError;
    }
  }

 private:
  Status status_;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Wall-clock budget per call(); zero = unbounded.  Sent to the server
  /// as the frame's deadline_ms and enforced locally on the receive path.
  std::chrono::milliseconds deadline{0};
  std::size_t max_payload = kDefaultMaxPayload;
};

class Client {
 public:
  /// Connects eagerly.  ECONNREFUSED (and friends) throw
  /// NetError{kBusy}: "server unavailable" is the same exit-code class as
  /// a BUSY rejection -- retry later.  Other socket failures are
  /// NetError{kIoError}.
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request/response round trip.  Throws RemoteError for kError
  /// frames, NetError{kDeadlineExceeded} on a local timeout,
  /// NetError{kConnectionClosed} when the server hangs up mid-response.
  Frame call(MsgType type, std::span<const std::uint8_t> payload);

  EncodeResponse encode(const EncodeRequest& request);
  DecodeResponse decode(const DecodeRequest& request);
  VerifyResponse verify(const VerifyRequest& request);
  StatsResponse stats();
  void ping();

 private:
  ClientOptions options_;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  FrameDecoder decoder_;
};

}  // namespace rmp::net
