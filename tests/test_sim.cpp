#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/datasets.hpp"
#include "sim/heat.hpp"
#include "sim/laplace.hpp"
#include "sim/md.hpp"
#include "sim/sedov.hpp"
#include "sim/synthetic.hpp"
#include "sim/wave.hpp"
#include "stats/metrics.hpp"

namespace rmp::sim {
namespace {

HeatConfig small_heat() {
  HeatConfig config;
  config.n = 20;
  config.steps = 100;
  return config;
}

TEST(Heat, StableDtFormula) {
  EXPECT_DOUBLE_EQ(heat_stable_dt(0.1, 3, 1.0), 0.01 / 6.0);
  EXPECT_DOUBLE_EQ(heat_stable_dt(0.1, 2, 2.0), 0.01 / 8.0);
}

TEST(Heat, TemperatureStaysBounded) {
  // Explicit diffusion under the CFL limit satisfies a maximum principle.
  const HeatConfig config = small_heat();
  const Field u = heat3d_run(config);
  for (double v : u.flat()) {
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, config.hot_value + 1e-9);
  }
}

TEST(Heat, HeatDiffusesFromCenter) {
  const HeatConfig config = small_heat();
  const Field initial = heat3d_initial(config);
  const Field u = heat3d_run(config);
  const std::size_t c = config.n / 2;
  // Center cools, near-boundary interior warms.
  EXPECT_LT(u.at(c, c, c), initial.at(c, c, c));
  EXPECT_GT(u.at(2, c, c), initial.at(2, c, c));
}

TEST(Heat, BoundariesStayDirichletZero) {
  const Field u = heat3d_run(small_heat());
  const std::size_t n = u.nx();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      EXPECT_EQ(u.at(0, a, b), 0.0);
      EXPECT_EQ(u.at(n - 1, a, b), 0.0);
      EXPECT_EQ(u.at(a, 0, b), 0.0);
      EXPECT_EQ(u.at(a, b, n - 1), 0.0);
    }
  }
}

TEST(Heat, MidPlaneIsSymmetryPlane) {
  // The paper's one-base insight: the solution is symmetric about the mid
  // Z-plane, so planes equidistant from it match.
  const HeatConfig config = small_heat();
  const Field u = heat3d_run(config);
  const std::size_t n = config.n;
  double max_asym = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n / 2; ++k) {
        max_asym = std::max(
            max_asym, std::fabs(u.at(i, j, k) - u.at(i, j, n - 1 - k)));
      }
    }
  }
  EXPECT_LT(max_asym, 1e-9);
}

TEST(Heat, ParallelMatchesSerial) {
  const HeatConfig config = small_heat();
  const Field serial = heat3d_run(config);
  for (int ranks : {1, 2, 3, 4}) {
    const Field parallel = heat3d_run_parallel(config, ranks);
    double max_diff = 0.0;
    for (std::size_t n = 0; n < serial.size(); ++n) {
      max_diff = std::max(
          max_diff, std::fabs(parallel.flat()[n] - serial.flat()[n]));
    }
    EXPECT_LT(max_diff, 1e-12) << "ranks=" << ranks;
  }
}

TEST(Heat, Parallel3dMatchesSerial) {
  const HeatConfig config = small_heat();
  const Field serial = heat3d_run(config);
  const std::array<std::array<int, 3>, 4> grids = {
      {{1, 1, 1}, {2, 1, 1}, {1, 2, 2}, {2, 2, 2}}};
  for (const auto& procs : grids) {
    const Field parallel = heat3d_run_parallel_3d(config, procs);
    double max_diff = 0.0;
    for (std::size_t n = 0; n < serial.size(); ++n) {
      max_diff = std::max(
          max_diff, std::fabs(parallel.flat()[n] - serial.flat()[n]));
    }
    EXPECT_LT(max_diff, 1e-12)
        << procs[0] << "x" << procs[1] << "x" << procs[2];
  }
}

TEST(Heat, Parallel3dRejectsBadGrid) {
  HeatConfig config = small_heat();
  EXPECT_THROW(heat3d_run_parallel_3d(config, {0, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(heat3d_run_parallel_3d(config, {100, 1, 1}),
               std::invalid_argument);
}

TEST(Heat, CoarseSnapshotsMatchTimes) {
  // Coarse run covers the same physical horizon: its final snapshot must
  // resemble (upsampled) the full run's final snapshot.
  HeatConfig config = small_heat();
  const auto full = heat3d_snapshots(config, 4);
  const auto coarse = heat3d_coarse_snapshots(config, 2, 4);
  ASSERT_EQ(coarse.size(), 4u);
  const Field up = upsample_linear(coarse.back(), config.n, config.n,
                                   config.n);
  // Cosine similarity of the final states.
  double dot = 0, na = 0, nb = 0;
  for (std::size_t n = 0; n < up.size(); ++n) {
    dot += up.flat()[n] * full.back().flat()[n];
    na += up.flat()[n] * up.flat()[n];
    nb += full.back().flat()[n] * full.back().flat()[n];
  }
  EXPECT_GT(dot / std::sqrt(na * nb + 1e-300), 0.97);
}

TEST(Heat, SnapshotsCoverLifetime) {
  const auto snapshots = heat3d_snapshots(small_heat(), 5);
  ASSERT_EQ(snapshots.size(), 5u);
  // Total heat decreases monotonically (Dirichlet losses at the walls).
  double previous = 1e300;
  for (const auto& s : snapshots) {
    double total = 0;
    for (double v : s.flat()) total += v;
    EXPECT_LT(total, previous);
    previous = total;
  }
}

TEST(Heat, ReducedModelResemblesMidPlane) {
  const HeatConfig config = small_heat();
  const Field full = heat3d_run(config);
  const Field reduced = heat2d_run(config);
  const Field mid = extract_z_plane(full, config.n / 2);
  // The projected 2D model should correlate strongly with the mid plane
  // (it decays slower since Z losses are dropped, so compare shapes).
  double dot = 0, nm = 0, nr = 0;
  for (std::size_t n = 0; n < mid.size(); ++n) {
    dot += mid.flat()[n] * reduced.flat()[n];
    nm += mid.flat()[n] * mid.flat()[n];
    nr += reduced.flat()[n] * reduced.flat()[n];
  }
  const double cosine = dot / std::sqrt(nm * nr + 1e-300);
  EXPECT_GT(cosine, 0.95);
}

TEST(Laplace, SolutionBoundedByBoundaryValues) {
  LaplaceConfig config;
  config.n = 16;
  config.max_sweeps = 300;
  const Field u = laplace3d_run(config);
  const double cap = config.hot_value * (1.0 + config.z_modulation) + 1e-9;
  for (double v : u.flat()) {
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, cap);
  }
}

TEST(Laplace, InteriorIsHarmonicAtConvergence) {
  LaplaceConfig config;
  config.n = 12;
  config.max_sweeps = 20000;
  config.tolerance = 1e-12;
  const Field u = laplace3d_run(config);
  // Residual of the 6-point stencil should be tiny.
  double max_residual = 0;
  for (std::size_t i = 1; i + 1 < u.nx(); ++i) {
    for (std::size_t j = 1; j + 1 < u.ny(); ++j) {
      for (std::size_t k = 1; k + 1 < u.nz(); ++k) {
        const double avg = (u.at(i + 1, j, k) + u.at(i - 1, j, k) +
                            u.at(i, j + 1, k) + u.at(i, j - 1, k) +
                            u.at(i, j, k + 1) + u.at(i, j, k - 1)) /
                           6.0;
        max_residual = std::max(max_residual, std::fabs(avg - u.at(i, j, k)));
      }
    }
  }
  EXPECT_LT(max_residual, 1e-8);
}

TEST(Laplace, ParallelMatchesSerial) {
  LaplaceConfig config;
  config.n = 14;
  config.max_sweeps = 120;
  config.tolerance = 0.0;  // fixed sweep count for exact comparability
  const Field serial = laplace3d_run(config);
  for (int ranks : {1, 2, 3}) {
    const Field parallel = laplace3d_run_parallel(config, ranks);
    double max_diff = 0.0;
    for (std::size_t n = 0; n < serial.size(); ++n) {
      max_diff = std::max(
          max_diff, std::fabs(parallel.flat()[n] - serial.flat()[n]));
    }
    EXPECT_LT(max_diff, 1e-12) << "ranks=" << ranks;
  }
}

TEST(Laplace, ParallelConvergenceIsCollective) {
  // With a loose tolerance every rank must stop at the same sweep; the
  // result still matches a serial run with the same tolerance.
  LaplaceConfig config;
  config.n = 12;
  config.max_sweeps = 5000;
  config.tolerance = 1e-4;
  const Field serial = laplace3d_run(config);
  const Field parallel = laplace3d_run_parallel(config, 3);
  double max_diff = 0.0;
  for (std::size_t n = 0; n < serial.size(); ++n) {
    max_diff = std::max(max_diff,
                        std::fabs(parallel.flat()[n] - serial.flat()[n]));
  }
  EXPECT_LT(max_diff, 1e-10);
}

TEST(Wave, PulsePropagates) {
  WaveConfig config;
  config.n = 512;
  config.steps = 200;
  const Field u = wave1d_run(config);
  // Energy is still present somewhere.
  double peak = 0;
  for (double v : u.flat()) peak = std::max(peak, std::fabs(v));
  EXPECT_GT(peak, 0.1);
}

TEST(Wave, FixedEndsStayZero) {
  WaveConfig config;
  config.n = 256;
  config.steps = 500;
  const Field u = wave1d_run(config);
  EXPECT_EQ(u.at(0), 0.0);
  EXPECT_EQ(u.at(config.n - 1), 0.0);
}

TEST(Wave, AmplitudeBoundedForStableCfl) {
  WaveConfig config;
  config.n = 256;
  config.steps = 2000;
  config.cfl = 0.95;
  const Field u = wave1d_run(config);
  for (double v : u.flat()) EXPECT_LE(std::fabs(v), 2.5);
}

TEST(Md, EnergyAndTemperatureSane) {
  MdConfig config;
  config.atoms = 128;
  config.steps = 50;
  MdSimulation simulation(config);
  simulation.run(config.steps);
  // Thermostat keeps kinetic temperature near the target.
  EXPECT_NEAR(simulation.temperature(), config.temperature, 0.5);
  EXPECT_TRUE(std::isfinite(simulation.potential_energy()));
}

TEST(Md, PositionsStayInBox) {
  MdConfig config;
  config.atoms = 128;
  config.steps = 60;
  MdSimulation simulation(config);
  simulation.run(config.steps);
  for (double x : simulation.positions()) {
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, simulation.box_length());
  }
}

TEST(Md, UmbrellaBiasPullsReactionCoordinate) {
  MdConfig config;
  config.atoms = 128;
  config.steps = 300;
  config.umbrella = true;
  config.umbrella_k = 400.0;
  config.umbrella_r0 = 1.3;
  MdSimulation simulation(config);
  simulation.run(config.steps);
  EXPECT_NEAR(simulation.reaction_coordinate(), config.umbrella_r0, 0.6);
}

TEST(Md, VirtualSitesLieBetweenParents) {
  MdConfig config;
  config.atoms = 128;
  config.steps = 20;
  config.virtual_sites = true;
  MdSimulation simulation(config);
  simulation.run(config.steps);
  const auto sites = simulation.virtual_site_positions();
  EXPECT_FALSE(sites.empty());
  EXPECT_EQ(sites.size() % 3, 0u);
  for (double s : sites) EXPECT_TRUE(std::isfinite(s));
}

TEST(Md, DeterministicForFixedSeed) {
  MdConfig config;
  config.atoms = 128;
  config.steps = 30;
  const Field a = md_run_positions(config);
  const Field b = md_run_positions(config);
  for (std::size_t n = 0; n < a.size(); ++n) {
    ASSERT_EQ(a.flat()[n], b.flat()[n]);
  }
}

TEST(Sedov, ShockRadiusGrowsAsTwoFifths) {
  SedovConfig config;
  const double r1 = sedov_shock_radius(config);
  config.time = 32.0;
  const double r32 = sedov_shock_radius(config);
  EXPECT_NEAR(r32 / r1, std::pow(32.0, 0.4), 1e-9);
}

TEST(Sedov, PressureFieldHasShockStructure) {
  SedovConfig config;
  config.n = 24;
  config.time = 1.0;
  const Field p = sedov_pressure_field(config);
  const std::size_t c = config.n / 2;
  // Pressure behind the shock is orders of magnitude above ambient, and
  // the far corner sits at ambient pressure.
  EXPECT_GT(p.at(c, c, c), 100.0 * config.p0);
  EXPECT_DOUBLE_EQ(p.at(0, 0, 0), config.p0);
}

TEST(Fish, HasManyExactZeros) {
  FishConfig config;
  config.n = 24;
  const Field v = fish_velocity_field(config);
  std::size_t zeros = 0;
  for (double x : v.flat()) {
    if (x == 0.0) ++zeros;
  }
  // The defining Fish property (paper §V-B.1): a large zero fraction.
  EXPECT_GT(static_cast<double>(zeros) / static_cast<double>(v.size()), 0.3);
}

TEST(Astro, VelocityNonNegativeAndPeaked) {
  AstroConfig config;
  config.n = 24;
  const Field v = astro_velocity_field(config);
  double peak = 0;
  for (double x : v.flat()) {
    EXPECT_GE(x, 0.0);
    peak = std::max(peak, x);
  }
  EXPECT_GT(peak, 0.5 * config.vmax);
}

TEST(Yf17, TemperatureAboveFreestreamNearBody) {
  Yf17Config config;
  config.n = 24;
  const Field t = yf17_temperature_field(config);
  double peak = 0;
  for (double x : t.flat()) {
    EXPECT_GE(x, config.freestream_temp - 1e-9);
    peak = std::max(peak, x);
  }
  EXPECT_GT(peak, config.freestream_temp + 0.5 * config.surface_heating);
}

TEST(Datasets, AllNineBuildAtSmallScale) {
  for (DatasetId id : all_datasets()) {
    const auto pair = make_dataset(id, 0.5);
    EXPECT_FALSE(pair.full.empty()) << pair.name;
    EXPECT_FALSE(pair.reduced.empty()) << pair.name;
    EXPECT_LT(pair.reduced.size(), pair.full.size()) << pair.name;
  }
}

TEST(Datasets, FullAndReducedShareCharacteristics) {
  // The Fig. 1 similarity claim, spot-checked via the KS distance of the
  // value distributions for a PDE dataset.
  const auto pair = make_dataset(DatasetId::kSedovPres, 0.5);
  // Normalize value ranges first: the reduced model evolves for half the
  // time, so absolute magnitudes differ while the distribution *shape*
  // (the Fig. 1 CDF claim) is preserved.
  auto normalized = [](const Field& f) {
    std::vector<double> out(f.flat().begin(), f.flat().end());
    const auto [lo, hi] = std::minmax_element(out.begin(), out.end());
    const double range = *hi - *lo;
    for (double& v : out) v = range > 0 ? (v - *lo) / range : 0.0;
    return out;
  };
  EXPECT_LT(stats::ks_distance(normalized(pair.full),
                               normalized(pair.reduced)),
            0.5);
}

TEST(Datasets, SnapshotsOnlyForTimeEvolvingSets) {
  EXPECT_NO_THROW(make_snapshots(DatasetId::kWave, 3, 0.25));
  EXPECT_THROW(make_snapshots(DatasetId::kFish, 3, 0.25),
               std::invalid_argument);
}

}  // namespace
}  // namespace rmp::sim
