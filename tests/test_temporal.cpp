#include "core/temporal.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "compress/factory.hpp"
#include "core/identity.hpp"
#include "sim/heat.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_zfp_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_zfp_delta();
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

std::vector<sim::Field> heat_snapshots(std::size_t count) {
  sim::HeatConfig config;
  config.n = 14;
  config.steps = 120;
  return sim::heat3d_snapshots(config, count);
}

TEST(Temporal, EmptySequence) {
  Codecs codecs;
  const auto sequence = temporal_encode({}, codecs.pair());
  EXPECT_TRUE(sequence.steps.empty());
  EXPECT_EQ(sequence.total_bytes(), 0u);
  EXPECT_TRUE(temporal_decode(sequence, codecs.pair()).empty());
}

TEST(Temporal, SingleSnapshotIsKeyframe) {
  Codecs codecs;
  const auto snapshots = heat_snapshots(1);
  const auto sequence = temporal_encode(snapshots, codecs.pair());
  ASSERT_EQ(sequence.steps.size(), 1u);
  EXPECT_EQ(sequence.steps[0].method, "temporal-key");
}

TEST(Temporal, RoundTripAllSnapshots) {
  Codecs codecs;
  const auto snapshots = heat_snapshots(6);
  const auto sequence = temporal_encode(snapshots, codecs.pair());
  const auto decoded = temporal_decode(sequence, codecs.pair());
  ASSERT_EQ(decoded.size(), snapshots.size());
  for (std::size_t s = 0; s < snapshots.size(); ++s) {
    // hot_value = 100 scale; 8-bit delta codec => ~0.5% of range.
    EXPECT_LT(stats::rmse(snapshots[s].flat(), decoded[s].flat()), 1.0)
        << "snapshot " << s;
  }
}

TEST(Temporal, ErrorDoesNotAccumulate) {
  // Deltas are taken against the decoded predecessor, so the last
  // snapshot must be about as accurate as the second.
  Codecs codecs;
  const auto snapshots = heat_snapshots(8);
  const auto decoded =
      temporal_decode(temporal_encode(snapshots, codecs.pair()), codecs.pair());
  const double early = stats::rmse(snapshots[1].flat(), decoded[1].flat());
  const double late = stats::rmse(snapshots[7].flat(), decoded[7].flat());
  EXPECT_LT(late, std::max(early * 10.0, 0.5));
}

TEST(Temporal, BeatsIndependentCompression) {
  // Nearby snapshots differ slowly: temporal deltas must use fewer bytes
  // than compressing every snapshot independently at original grade.
  Codecs codecs;
  const auto snapshots = heat_snapshots(6);
  const auto sequence = temporal_encode(snapshots, codecs.pair());

  std::size_t independent = 0;
  IdentityPreconditioner identity;
  for (const auto& snapshot : snapshots) {
    EncodeStats stats;
    identity.encode(snapshot, codecs.pair(), &stats);
    independent += stats.total_bytes;
  }
  EXPECT_LT(sequence.total_bytes(), independent);
}

TEST(Temporal, KeyframeIntervalInsertsKeyframes) {
  Codecs codecs;
  const auto snapshots = heat_snapshots(7);
  TemporalOptions options;
  options.keyframe_interval = 3;
  const auto sequence = temporal_encode(snapshots, codecs.pair(), options);
  ASSERT_EQ(sequence.steps.size(), 7u);
  EXPECT_EQ(sequence.steps[0].method, "temporal-key");
  EXPECT_EQ(sequence.steps[3].method, "temporal-key");
  EXPECT_EQ(sequence.steps[6].method, "temporal-key");
  EXPECT_EQ(sequence.steps[1].method, "temporal-delta");
}

TEST(Temporal, RejectsShapeMismatch) {
  Codecs codecs;
  std::vector<sim::Field> snapshots = {sim::Field(4, 4, 4),
                                       sim::Field(5, 5, 5)};
  EXPECT_THROW(temporal_encode(snapshots, codecs.pair()),
               std::invalid_argument);
}

TEST(Temporal, DecodeRejectsUnknownMethod) {
  Codecs codecs;
  TemporalSequence sequence;
  io::Container bogus;
  bogus.method = "not-a-step";
  sequence.steps.push_back(bogus);
  EXPECT_THROW(temporal_decode(sequence, codecs.pair()), std::runtime_error);
}

}  // namespace
}  // namespace rmp::core
