// BoundedQueue admission / rejection / drain under saturation -- the
// backpressure state machine rmpd's admission control is built on
// (DESIGN.md §11).  The invariants under test:
//   * try_push never blocks: full -> kBusy immediately, closed -> kClosed.
//   * Every accepted item is handed to exactly one consumer, including
//     items still queued when close() flips the queue into drain mode.
//   * pop() returns nullopt only once the queue is closed AND empty.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "net/bounded_queue.hpp"

namespace {

using rmp::net::BoundedQueue;
using Push = rmp::net::BoundedQueue<int>::Push;

TEST(NetQueue, AcceptsUntilCapacityThenBusy) {
  BoundedQueue<int> queue(3);
  EXPECT_EQ(queue.try_push(1), Push::kAccepted);
  EXPECT_EQ(queue.try_push(2), Push::kAccepted);
  EXPECT_EQ(queue.try_push(3), Push::kAccepted);
  EXPECT_EQ(queue.try_push(4), Push::kBusy);
  EXPECT_EQ(queue.depth(), 3u);

  // Popping one frees exactly one admission slot.
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.try_push(5), Push::kAccepted);
  EXPECT_EQ(queue.try_push(6), Push::kBusy);

  const auto stats = queue.stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.rejected_busy, 2u);
  EXPECT_EQ(stats.peak_depth, 3u);
}

TEST(NetQueue, ZeroCapacityIsClampedToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_EQ(queue.try_push(1), Push::kAccepted);
  EXPECT_EQ(queue.try_push(2), Push::kBusy);
}

TEST(NetQueue, CloseRefusesProducersButDrainsConsumers) {
  BoundedQueue<int> queue(8);
  ASSERT_EQ(queue.try_push(10), Push::kAccepted);
  ASSERT_EQ(queue.try_push(11), Push::kAccepted);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.try_push(12), Push::kClosed);

  // Items admitted before the close still drain, in order.
  EXPECT_EQ(queue.pop(), 10);
  EXPECT_EQ(queue.pop(), 11);
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.pop(), std::nullopt);  // idempotent once drained

  const auto stats = queue.stats();
  EXPECT_EQ(stats.rejected_closed, 1u);
  EXPECT_EQ(stats.popped, 2u);
}

TEST(NetQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> queue(4);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (queue.pop().has_value()) {
      }
      woke.fetch_add(1);
    });
  }
  // Give the consumers a moment to block inside pop().
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  queue.close();
  for (auto& thread : consumers) thread.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(NetQueue, SaturationDeliversEveryAcceptedItemExactlyOnce) {
  // Many producers hammer a tiny queue while consumers drain it; pushes
  // rejected kBusy are retried so every value eventually lands.  The
  // consumers' union must be exactly the produced set, no dupes.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> queue(2);

  std::mutex seen_mutex;
  std::set<int> seen;
  std::atomic<std::size_t> popped{0};
  std::atomic<std::uint64_t> busy_rejections{0};

  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (const auto item = queue.pop()) {
        std::lock_guard lock(seen_mutex);
        EXPECT_TRUE(seen.insert(*item).second) << "duplicate " << *item;
        popped.fetch_add(1);
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (true) {
          const auto result = queue.try_push(value);
          ASSERT_NE(result, Push::kClosed);
          if (result == Push::kAccepted) break;
          busy_rejections.fetch_add(1);
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : producers) thread.join();
  queue.close();
  for (auto& thread : consumers) thread.join();

  EXPECT_EQ(popped.load(), static_cast<std::size_t>(kProducers) * kPerProducer);
  EXPECT_EQ(seen.size(), popped.load());
  // With capacity 2 and four producers, backpressure must actually bite.
  EXPECT_GT(busy_rejections.load(), 0u);
  const auto stats = queue.stats();
  EXPECT_EQ(stats.accepted, stats.popped);
  EXPECT_LE(stats.peak_depth, 2u);
}

TEST(NetQueue, DrainRaceNeverLosesItems) {
  // close() racing try_push: an item is either admitted (and then must be
  // popped) or typed-rejected -- never silently dropped.
  for (int round = 0; round < 50; ++round) {
    BoundedQueue<int> queue(16);
    std::atomic<int> admitted{0};
    std::thread producer([&] {
      for (int i = 0; i < 16; ++i) {
        if (queue.try_push(i) == Push::kAccepted) admitted.fetch_add(1);
      }
    });
    std::thread closer([&] { queue.close(); });
    producer.join();
    closer.join();

    int drained = 0;
    while (queue.pop().has_value()) ++drained;
    EXPECT_EQ(drained, admitted.load()) << "round " << round;
  }
}

}  // namespace
