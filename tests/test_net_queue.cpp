// BoundedQueue admission / rejection / drain under saturation -- the
// backpressure state machine rmpd's admission control is built on
// (DESIGN.md §11).  The invariants under test:
//   * try_push never blocks: full -> kBusy immediately, closed -> kClosed.
//   * Every accepted item is handed to exactly one consumer, including
//     items still queued when close() flips the queue into drain mode.
//   * pop() returns nullopt only once the queue is closed AND empty.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "net/bounded_queue.hpp"

namespace {

using rmp::net::BoundedQueue;
using Push = rmp::net::BoundedQueue<int>::Push;

TEST(NetQueue, AcceptsUntilCapacityThenBusy) {
  BoundedQueue<int> queue(3);
  EXPECT_EQ(queue.try_push(1), Push::kAccepted);
  EXPECT_EQ(queue.try_push(2), Push::kAccepted);
  EXPECT_EQ(queue.try_push(3), Push::kAccepted);
  EXPECT_EQ(queue.try_push(4), Push::kBusy);
  EXPECT_EQ(queue.depth(), 3u);

  // Popping one frees exactly one admission slot.
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.try_push(5), Push::kAccepted);
  EXPECT_EQ(queue.try_push(6), Push::kBusy);

  const auto stats = queue.stats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.rejected_busy, 2u);
  EXPECT_EQ(stats.peak_depth, 3u);
}

TEST(NetQueue, ZeroCapacityIsClampedToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_EQ(queue.try_push(1), Push::kAccepted);
  EXPECT_EQ(queue.try_push(2), Push::kBusy);
}

TEST(NetQueue, CloseRefusesProducersButDrainsConsumers) {
  BoundedQueue<int> queue(8);
  ASSERT_EQ(queue.try_push(10), Push::kAccepted);
  ASSERT_EQ(queue.try_push(11), Push::kAccepted);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.try_push(12), Push::kClosed);

  // Items admitted before the close still drain, in order.
  EXPECT_EQ(queue.pop(), 10);
  EXPECT_EQ(queue.pop(), 11);
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_EQ(queue.pop(), std::nullopt);  // idempotent once drained

  const auto stats = queue.stats();
  EXPECT_EQ(stats.rejected_closed, 1u);
  EXPECT_EQ(stats.popped, 2u);
}

TEST(NetQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> queue(4);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (queue.pop().has_value()) {
      }
      woke.fetch_add(1);
    });
  }
  // Give the consumers a moment to block inside pop().
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  queue.close();
  for (auto& thread : consumers) thread.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(NetQueue, SaturationDeliversEveryAcceptedItemExactlyOnce) {
  // Many producers hammer a tiny queue while consumers drain it; pushes
  // rejected kBusy are retried so every value eventually lands.  The
  // consumers' union must be exactly the produced set, no dupes.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> queue(2);

  std::mutex seen_mutex;
  std::set<int> seen;
  std::atomic<std::size_t> popped{0};
  std::atomic<std::uint64_t> busy_rejections{0};

  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (const auto item = queue.pop()) {
        std::lock_guard lock(seen_mutex);
        EXPECT_TRUE(seen.insert(*item).second) << "duplicate " << *item;
        popped.fetch_add(1);
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        while (true) {
          const auto result = queue.try_push(value);
          ASSERT_NE(result, Push::kClosed);
          if (result == Push::kAccepted) break;
          busy_rejections.fetch_add(1);
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : producers) thread.join();
  queue.close();
  for (auto& thread : consumers) thread.join();

  EXPECT_EQ(popped.load(), static_cast<std::size_t>(kProducers) * kPerProducer);
  EXPECT_EQ(seen.size(), popped.load());
  // With capacity 2 and four producers, backpressure must actually bite.
  EXPECT_GT(busy_rejections.load(), 0u);
  const auto stats = queue.stats();
  EXPECT_EQ(stats.accepted, stats.popped);
  EXPECT_LE(stats.peak_depth, 2u);
}

TEST(NetQueue, CloseWhileFullHammerConservesEveryRejection) {
  // The close-while-full race: producers hammer a tiny (often-full) queue
  // while close() fires mid-storm.  Every single try_push must land in
  // exactly one accounting bucket -- the conservation law
  //   attempts == accepted + rejected_busy + rejected_closed
  // must hold in the final stats AND in every mid-race snapshot, and the
  // producers' own tallies must agree with the queue's.
  constexpr int kProducers = 6;
  constexpr int kPerProducer = 400;
  for (int round = 0; round < 20; ++round) {
    BoundedQueue<int> queue(2);
    std::atomic<std::uint64_t> my_accepted{0}, my_busy{0}, my_closed{0};

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < kPerProducer; ++i) {
          switch (queue.try_push(i)) {
            case Push::kAccepted: my_accepted.fetch_add(1); break;
            case Push::kBusy: my_busy.fetch_add(1); break;
            case Push::kClosed: my_closed.fetch_add(1); break;
          }
        }
      });
    }
    // A consumer keeps slots churning so the queue oscillates across the
    // full boundary, and a snapshot thread checks the invariant mid-race.
    std::atomic<bool> stop_snapshots{false};
    std::thread snapshots([&] {
      while (!stop_snapshots.load()) {
        const auto s = queue.stats();
        EXPECT_EQ(s.attempts,
                  s.accepted + s.rejected_busy + s.rejected_closed);
        std::this_thread::yield();
      }
    });
    std::atomic<std::uint64_t> drained{0};
    std::thread consumer([&] {
      while (queue.pop().has_value()) drained.fetch_add(1);
    });
    // Close mid-storm: the queue is capacity-2 under six producers, so
    // the close lands while it is (almost certainly) full.
    std::this_thread::yield();
    queue.close();

    for (auto& thread : producers) thread.join();
    consumer.join();
    stop_snapshots.store(true);
    snapshots.join();

    const auto stats = queue.stats();
    EXPECT_EQ(stats.attempts,
              static_cast<std::uint64_t>(kProducers) * kPerProducer)
        << "round " << round;
    EXPECT_EQ(stats.attempts,
              stats.accepted + stats.rejected_busy + stats.rejected_closed)
        << "round " << round;
    EXPECT_EQ(stats.accepted, my_accepted.load()) << "round " << round;
    EXPECT_EQ(stats.rejected_busy, my_busy.load()) << "round " << round;
    EXPECT_EQ(stats.rejected_closed, my_closed.load()) << "round " << round;
    // Every accepted item was drained by the consumer -- close() loses
    // nothing that was admitted.
    EXPECT_EQ(stats.popped, stats.accepted) << "round " << round;
    EXPECT_EQ(drained.load(), stats.accepted) << "round " << round;
    // Once closed, producers must see kClosed even when the queue is
    // full: drain rejections and busy rejections never alias.
    EXPECT_EQ(queue.try_push(-1), Push::kClosed);
  }
}

TEST(NetQueue, CloseReportsBacklogDepth) {
  BoundedQueue<int> queue(8);
  ASSERT_EQ(queue.try_push(1), Push::kAccepted);
  ASSERT_EQ(queue.try_push(2), Push::kAccepted);
  ASSERT_EQ(queue.try_push(3), Push::kAccepted);
  EXPECT_EQ(queue.close(), 3u);
  EXPECT_EQ(queue.close(), 3u);  // idempotent, backlog unchanged
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.close(), 2u);
}

TEST(NetQueue, DrainRaceNeverLosesItems) {
  // close() racing try_push: an item is either admitted (and then must be
  // popped) or typed-rejected -- never silently dropped.
  for (int round = 0; round < 50; ++round) {
    BoundedQueue<int> queue(16);
    std::atomic<int> admitted{0};
    std::thread producer([&] {
      for (int i = 0; i < 16; ++i) {
        if (queue.try_push(i) == Push::kAccepted) admitted.fetch_add(1);
      }
    });
    std::thread closer([&] { queue.close(); });
    producer.join();
    closer.join();

    int drained = 0;
    while (queue.pop().has_value()) ++drained;
    EXPECT_EQ(drained, admitted.load()) << "round " << round;
  }
}

}  // namespace
