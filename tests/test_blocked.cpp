#include "core/blocked.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "compress/factory.hpp"
#include "core/pipeline.hpp"
#include "sim/heat.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_zfp_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_zfp_delta();
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

sim::Field heat_field() {
  sim::HeatConfig config;
  config.n = 14;
  config.steps = 100;
  config.hot_center_z = 0.6;
  return sim::heat3d_run(config);
}

class BlockedInnerSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(BlockedInnerSweep, RoundTripWithinError) {
  Codecs codecs;
  BlockedPreconditioner blocked(GetParam(), 4);
  const sim::Field f = heat_field();
  const auto container = blocked.encode(f, codecs.pair(), nullptr);
  const auto decoded = blocked.decode(container, codecs.pair(), nullptr);
  EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 1.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Inners, BlockedInnerSweep,
                         ::testing::Values("identity", "pca", "svd",
                                           "wavelet", "tucker"));

TEST(Blocked, RegistryDispatch) {
  Codecs codecs;
  const sim::Field f = heat_field();
  const auto blocked = make_preconditioner("blocked-svd");
  EXPECT_EQ(blocked->name(), "blocked-svd");
  const auto container = blocked->encode(f, codecs.pair(), nullptr);
  const sim::Field decoded = reconstruct(container, codecs.pair());
  EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 1.0);
}

TEST(Blocked, PartitionCountClampedToRows) {
  Codecs codecs;
  BlockedPreconditioner blocked("identity", 1000);
  sim::Field tiny(6, 4, 1);
  for (std::size_t n = 0; n < tiny.size(); ++n) {
    tiny.flat()[n] = static_cast<double>(n);
  }
  const auto container = blocked.encode(tiny, codecs.pair(), nullptr);
  const auto decoded = blocked.decode(container, codecs.pair(), nullptr);
  EXPECT_LT(stats::max_abs_error(tiny.flat(), decoded.flat()), 1e-3);
}

TEST(Blocked, StatsAggregateAcrossBlocks) {
  Codecs codecs;
  BlockedPreconditioner blocked("svd", 3);
  EncodeStats stats;
  blocked.encode(heat_field(), codecs.pair(), &stats);
  EXPECT_GT(stats.reduced_bytes, 0u);
  EXPECT_GT(stats.delta_bytes, 0u);
  EXPECT_GT(stats.compression_ratio, 1.0);
}

TEST(Blocked, RejectsNesting) {
  EXPECT_THROW(BlockedPreconditioner("blocked-pca", 2),
               std::invalid_argument);
  EXPECT_THROW(BlockedPreconditioner("pca>svd", 2), std::invalid_argument);
  EXPECT_THROW(BlockedPreconditioner("identity", 0), std::invalid_argument);
}

TEST(Blocked, DecodeRejectsMissingSections) {
  Codecs codecs;
  BlockedPreconditioner blocked("pca", 2);
  io::Container empty;
  empty.method = "blocked-pca";
  EXPECT_THROW(blocked.decode(empty, codecs.pair(), nullptr),
               std::runtime_error);
}

}  // namespace
}  // namespace rmp::core
