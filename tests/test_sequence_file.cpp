#include "io/sequence_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "compress/factory.hpp"
#include "core/temporal.hpp"
#include "sim/heat.hpp"
#include "stats/metrics.hpp"

namespace rmp::io {
namespace {

namespace fs = std::filesystem;

class SequenceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = fs::temp_directory_path() /
            ("rmp_seq_" + std::to_string(::getpid()) + ".rmps");
    ref_path_ = fs::temp_directory_path() /
                ("rmp_seq_ref_" + std::to_string(::getpid()) + ".rmps");
  }
  void TearDown() override {
    fs::remove(path_);
    fs::remove(sequence_journal_path(path_));
    fs::remove(ref_path_);
    fs::remove(sequence_journal_path(ref_path_));
  }

  static Container sample(int i) {
    Container c;
    c.method = "step" + std::to_string(i);
    c.nx = static_cast<std::uint64_t>(i + 1);
    c.add("data", std::vector<std::uint8_t>(static_cast<std::size_t>(i * 3),
                                            static_cast<std::uint8_t>(i)));
    return c;
  }

  static std::vector<char> slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    std::vector<char> bytes(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return bytes;
  }

  fs::path path_;
  fs::path ref_path_;
};

TEST_F(SequenceFileTest, WriteReadRoundTrip) {
  {
    SequenceWriter writer(path_);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(writer.append(sample(i)), static_cast<std::size_t>(i));
    }
    writer.finish();
  }
  SequenceReader reader(path_);
  ASSERT_EQ(reader.step_count(), 5u);
  for (int i = 0; i < 5; ++i) {
    const Container c = reader.read_step(static_cast<std::size_t>(i));
    EXPECT_EQ(c.method, "step" + std::to_string(i));
    EXPECT_EQ(c.nx, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(c.find("data")->bytes.size(), static_cast<std::size_t>(i * 3));
  }
}

TEST_F(SequenceFileTest, RandomAccessOutOfOrder) {
  {
    SequenceWriter writer(path_);
    for (int i = 0; i < 8; ++i) writer.append(sample(i));
    writer.finish();
  }
  SequenceReader reader(path_);
  EXPECT_EQ(reader.read_step(6).method, "step6");
  EXPECT_EQ(reader.read_step(0).method, "step0");
  EXPECT_EQ(reader.read_step(7).method, "step7");
  EXPECT_THROW(reader.read_step(8), std::out_of_range);
}

TEST_F(SequenceFileTest, EmptySequence) {
  {
    SequenceWriter writer(path_);
    writer.finish();
  }
  SequenceReader reader(path_);
  EXPECT_EQ(reader.step_count(), 0u);
  EXPECT_TRUE(reader.read_all().empty());
}

TEST_F(SequenceFileTest, DestructorCommitsPrefixForResume) {
  // An abandoned writer must never half-publish: the destination stays
  // untouched and the journal keeps the committed steps for resume().
  { SequenceWriter writer(path_); writer.append(sample(1)); }
  EXPECT_FALSE(fs::exists(path_));
  ASSERT_TRUE(fs::exists(sequence_journal_path(path_)));

  auto writer = SequenceWriter::resume(path_);
  EXPECT_EQ(writer.steps_written(), 1u);
  writer.finish();
  SequenceReader reader(path_);
  ASSERT_EQ(reader.step_count(), 1u);
  EXPECT_EQ(reader.read_step(0).method, "step1");
}

TEST_F(SequenceFileTest, ResumeProducesByteIdenticalArchive) {
  {
    SequenceWriter writer(ref_path_);
    for (int i = 0; i < 3; ++i) writer.append(sample(i));
    writer.finish();
  }
  {
    SequenceWriter writer(path_);
    writer.append(sample(0));
    writer.append(sample(1));
    // Abandoned here: destructor commits the two-step prefix.
  }
  auto writer = SequenceWriter::resume(path_);
  ASSERT_EQ(writer.steps_written(), 2u);
  writer.append(sample(2));
  writer.finish();
  EXPECT_EQ(slurp(path_), slurp(ref_path_));
  EXPECT_FALSE(fs::exists(sequence_journal_path(path_)));
}

TEST_F(SequenceFileTest, ResumeTruncatesTornTail) {
  { SequenceWriter writer(path_); writer.append(sample(4)); }
  // Simulate a crash mid-append: garbage glued after the committed step.
  {
    std::ofstream tail(sequence_journal_path(path_),
                       std::ios::binary | std::ios::app);
    tail << "half-written step from a run that died mid-write";
  }
  auto writer = SequenceWriter::resume(path_);
  EXPECT_EQ(writer.steps_written(), 1u);
  writer.append(sample(5));
  writer.finish();

  SequenceReader reader(path_);
  ASSERT_EQ(reader.step_count(), 2u);
  EXPECT_EQ(reader.read_step(0).method, "step4");
  EXPECT_EQ(reader.read_step(1).method, "step5");
}

TEST_F(SequenceFileTest, ResumeWithoutJournalThrows) {
  try {
    auto writer = SequenceWriter::resume(path_);
    FAIL() << "resume invented a journal out of thin air";
  } catch (const ContainerError& e) {
    EXPECT_EQ(e.code(), ContainerErrc::kIoError);
  }
}

TEST_F(SequenceFileTest, SecondWriterOnSamePathIsRejected) {
  SequenceWriter first(path_);
  try {
    SequenceWriter second(path_);
    FAIL() << "two writers shared one journal";
  } catch (const ContainerError& e) {
    EXPECT_EQ(e.code(), ContainerErrc::kIoError);
    EXPECT_NE(std::string(e.what()).find("already exists"), std::string::npos);
  }
  first.finish();
}

TEST_F(SequenceFileTest, ScanJournalToleratesGarbage) {
  const std::vector<std::uint8_t> junk(513, 0xA5);
  const JournalScan scan = scan_sequence_journal(junk);
  EXPECT_TRUE(scan.entries.empty());
  EXPECT_EQ(scan.committed_bytes, 0u);
  EXPECT_EQ(scan.torn_bytes, junk.size());
  EXPECT_TRUE(scan_sequence_journal({}).entries.empty());
}

TEST_F(SequenceFileTest, AppendAfterFinishThrows) {
  SequenceWriter writer(path_);
  writer.finish();
  EXPECT_THROW(writer.append(sample(0)), std::logic_error);
}

TEST_F(SequenceFileTest, RejectsGarbageFile) {
  {
    std::ofstream file(path_, std::ios::binary);
    file << "this is not a sequence file at all, not even close";
  }
  EXPECT_THROW(SequenceReader reader(path_), std::runtime_error);
}

TEST_F(SequenceFileTest, RejectsMissingFile) {
  EXPECT_THROW(SequenceReader reader(path_ / "nope"), std::runtime_error);
}

TEST_F(SequenceFileTest, CorruptedStepIsDetected) {
  {
    SequenceWriter writer(path_);
    writer.append(sample(3));
    writer.finish();
  }
  // Flip a byte inside the first container's payload region.
  {
    std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(10);
    char b;
    file.seekg(10);
    file.read(&b, 1);
    b = static_cast<char>(b ^ 0x10);
    file.seekp(10);
    file.write(&b, 1);
  }
  SequenceReader reader(path_);
  EXPECT_THROW(reader.read_step(0), std::runtime_error);
}

TEST_F(SequenceFileTest, WriterLeavesNoTempFileBehind) {
  {
    SequenceWriter writer(path_);
    writer.append(sample(2));
    writer.finish();
  }
  EXPECT_TRUE(fs::exists(path_));
  EXPECT_FALSE(fs::exists(sequence_journal_path(path_)));
}

TEST_F(SequenceFileTest, MissingTrailerIndexIsRebuilt) {
  {
    SequenceWriter writer(path_);
    for (int i = 0; i < 4; ++i) writer.append(sample(i));
    writer.finish();
  }
  // Chop off the index + trailer (count/magic plus four 20-byte
  // offset/size/crc entries), as if the writer crashed mid-finish.
  const auto full = fs::file_size(path_);
  fs::resize_file(path_, full - (16 + 4 * 20));

  SequenceReader reader(path_);
  EXPECT_TRUE(reader.index_rebuilt());
  ASSERT_EQ(reader.step_count(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(reader.read_step(static_cast<std::size_t>(i)).method,
              "step" + std::to_string(i));
  }
}

TEST_F(SequenceFileTest, RebuildCanBeDisabled) {
  {
    SequenceWriter writer(path_);
    writer.append(sample(1));
    writer.finish();
  }
  fs::resize_file(path_, fs::file_size(path_) - (16 + 20));
  try {
    SequenceReader reader(path_, {.allow_index_rebuild = false});
    FAIL() << "reader accepted a trailer-less file with rebuild disabled";
  } catch (const ContainerError& e) {
    EXPECT_EQ(e.code(), ContainerErrc::kIndexCorrupt);
  }
}

TEST_F(SequenceFileTest, CorruptMiddleStepIsSkippedAndReported) {
  {
    SequenceWriter writer(path_);
    for (int i = 1; i <= 3; ++i) writer.append(sample(i));
    writer.finish();
  }
  // Flip the last payload byte of step 1 (v3 keeps payloads at the end of
  // each serialized container, so the step's final byte is section data).
  // Each on-disk step is the container plus its commit marker.
  const auto step0_size =
      serialize(sample(1)).size() + kSequenceCommitMarkerBytes;
  const auto step1_size = serialize(sample(2)).size();
  {
    std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
    const auto target =
        static_cast<std::streamoff>(step0_size + step1_size - 1);
    file.seekg(target);
    char b = 0;
    file.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    file.seekp(target);
    file.write(&b, 1);
  }

  SequenceReader reader(path_);
  SequenceScanReport report;
  const auto steps = reader.read_all_salvage(&report);
  ASSERT_EQ(report.steps.size(), 3u);
  EXPECT_EQ(report.ok_count(), 2u);
  EXPECT_TRUE(report.steps[0].ok);
  EXPECT_FALSE(report.steps[1].ok);
  EXPECT_TRUE(report.steps[2].ok);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].method, "step1");
  EXPECT_EQ(steps[1].method, "step3");
}

TEST_F(SequenceFileTest, TruncatedMidWriteRecoversCompletePrefix) {
  // Simulate a crash mid-append: three whole containers, then half of a
  // fourth, and no trailer.
  {
    std::ofstream file(path_, std::ios::binary | std::ios::trunc);
    for (int i = 0; i < 3; ++i) {
      const auto bytes = serialize(sample(i));
      file.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    }
    const auto partial = serialize(sample(7));
    file.write(reinterpret_cast<const char*>(partial.data()),
               static_cast<std::streamsize>(partial.size() / 2));
  }

  SequenceReader reader(path_);
  EXPECT_TRUE(reader.index_rebuilt());
  ASSERT_EQ(reader.step_count(), 3u);
  SequenceScanReport report;
  const auto steps = reader.read_all_salvage(&report);
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(report.ok_count(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(steps[static_cast<std::size_t>(i)].method,
              "step" + std::to_string(i));
  }
}

TEST_F(SequenceFileTest, TemporalPipelineEndToEnd) {
  // Full workflow: snapshots -> temporal encode -> sequence file ->
  // read back -> temporal decode.
  sim::HeatConfig config;
  config.n = 12;
  config.steps = 80;
  const auto snapshots = sim::heat3d_snapshots(config, 4);

  const auto reduced = compress::make_zfp_original();
  const auto delta = compress::make_zfp_delta();
  const core::CodecPair codecs{reduced.get(), delta.get()};
  const auto sequence = core::temporal_encode(snapshots, codecs);

  {
    SequenceWriter writer(path_);
    for (const auto& step : sequence.steps) writer.append(step);
    writer.finish();
  }

  SequenceReader reader(path_);
  core::TemporalSequence loaded;
  loaded.steps = reader.read_all();
  const auto decoded = core::temporal_decode(loaded, codecs);
  ASSERT_EQ(decoded.size(), snapshots.size());
  for (std::size_t s = 0; s < snapshots.size(); ++s) {
    EXPECT_LT(stats::rmse(snapshots[s].flat(), decoded[s].flat()), 1.0);
  }
}

}  // namespace
}  // namespace rmp::io
