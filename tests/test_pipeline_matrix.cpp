// Cross-product property tests: every preconditioner x every codec pair
// x several field shapes must round-trip with bounded error and sane
// accounting.  This is the library's master invariant: whatever the
// method, encode -> container -> decode approximates the input, the
// container is self-describing, and the size bookkeeping adds up.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "compress/factory.hpp"
#include "core/pipeline.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

enum class CodecKind { kSz, kZfp };
enum class Shape { kCube, kSlab, kPlane, kLine };

std::string shape_name(Shape shape) {
  switch (shape) {
    case Shape::kCube: return "cube";
    case Shape::kSlab: return "slab";
    case Shape::kPlane: return "plane";
    case Shape::kLine: return "line";
  }
  return "?";
}

sim::Field make_field(Shape shape) {
  auto fill = [](sim::Field f) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < f.nx(); ++i) {
      for (std::size_t j = 0; j < f.ny(); ++j) {
        for (std::size_t k = 0; k < f.nz(); ++k, ++n) {
          f.at(i, j, k) = 5.0 * std::sin(0.3 * static_cast<double>(i)) +
                          std::cos(0.2 * static_cast<double>(j)) *
                              static_cast<double>(k + 1) +
                          0.01 * static_cast<double>(n % 17);
        }
      }
    }
    return f;
  };
  switch (shape) {
    case Shape::kCube: return fill(sim::Field(10, 10, 10));
    case Shape::kSlab: return fill(sim::Field(6, 20, 8));
    case Shape::kPlane: return fill(sim::Field(24, 18, 1));
    case Shape::kLine: return fill(sim::Field(360, 1, 1));
  }
  return {};
}

using Param = std::tuple<std::string, CodecKind, Shape>;

class PipelineMatrix : public ::testing::TestWithParam<Param> {
 protected:
  struct Codecs {
    std::unique_ptr<compress::Compressor> reduced;
    std::unique_ptr<compress::Compressor> delta;
  };
  static Codecs make_codecs(CodecKind kind) {
    if (kind == CodecKind::kSz) {
      return {compress::make_sz_original(), compress::make_sz_delta()};
    }
    return {compress::make_zfp_original(), compress::make_zfp_delta()};
  }
};

TEST_P(PipelineMatrix, RoundTripWithBoundedError) {
  const auto& [method, kind, shape] = GetParam();
  const sim::Field field = make_field(shape);

  // Projection methods need 3D data; skip invalid combinations the same
  // way select_best_model does.
  const bool needs_3d =
      method == "one-base" || method == "multi-base" || method == "duomodel";
  if (needs_3d && field.rank() != 3) {
    GTEST_SKIP() << method << " needs a 3D field";
  }

  const auto codecs = make_codecs(kind);
  const CodecPair pair{codecs.reduced.get(), codecs.delta.get()};
  const auto preconditioner = make_preconditioner(method);
  const PipelineResult result = run_pipeline(*preconditioner, field, pair);

  // 1. Error bounded: within 5% of the value range for every method
  //    (lossy codecs at paper bounds are far tighter than this).
  double lo = field.flat()[0], hi = lo;
  for (double v : field.flat()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(result.rmse, 0.05 * (hi - lo) + 1e-12) << method;

  // 2. Accounting adds up.
  EXPECT_EQ(result.stats.original_bytes, field.size() * sizeof(double));
  EXPECT_GT(result.stats.total_bytes, 0u);
  EXPECT_GE(result.stats.total_bytes,
            result.stats.reduced_bytes + result.stats.delta_bytes);

  // 3. The container is self-describing: reconstruct() via the registry
  //    must agree with the preconditioner's own decode.
  const sim::Field via_registry = reconstruct(result.container, pair);
  const sim::Field via_decode =
      preconditioner->decode(result.container, pair, nullptr);
  for (std::size_t n = 0; n < field.size(); ++n) {
    ASSERT_EQ(via_registry.flat()[n], via_decode.flat()[n]);
  }

  // 4. Serialization round trip preserves the container exactly.
  const auto bytes = io::serialize(result.container);
  const auto restored = io::deserialize(bytes);
  EXPECT_EQ(restored.method, result.container.method);
  EXPECT_EQ(restored.payload_bytes(), result.container.payload_bytes());
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, PipelineMatrix,
    ::testing::Combine(
        ::testing::Values("identity", "one-base", "multi-base", "duomodel",
                          "pca", "svd", "wavelet", "pca-part", "tucker",
                          "pca>wavelet"),
        ::testing::Values(CodecKind::kSz, CodecKind::kZfp),
        ::testing::Values(Shape::kCube, Shape::kSlab, Shape::kPlane,
                          Shape::kLine)),
    [](const ::testing::TestParamInfo<Param>& info) {
      // No structured bindings here: their commas inside [] would split
      // the macro arguments.
      std::string name =
          std::get<0>(info.param) + "_" +
          (std::get<1>(info.param) == CodecKind::kSz ? "sz" : "zfp") + "_" +
          shape_name(std::get<2>(info.param));
      for (char& c : name) {
        if (c == '-' || c == '>') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rmp::core
