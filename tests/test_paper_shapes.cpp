// Integration tests that pin the *paper's headline shapes* in CI: if a
// refactor breaks "preconditioning helps Heat3d" or "Fish loses", these
// fail even though every unit invariant still holds.  Each test names
// the figure it guards.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/factory.hpp"
#include "core/pca.hpp"
#include "core/pipeline.hpp"
#include "sim/datasets.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

constexpr double kScale = 0.4;  // small but structurally representative

struct Codecs {
  std::unique_ptr<compress::Compressor> sz_reduced =
      compress::make_sz_original();
  std::unique_ptr<compress::Compressor> sz_delta = compress::make_sz_delta();
  std::unique_ptr<compress::Compressor> zfp_reduced =
      compress::make_zfp_original();
  std::unique_ptr<compress::Compressor> zfp_delta =
      compress::make_zfp_delta();
  CodecPair sz() const { return {sz_reduced.get(), sz_delta.get()}; }
  CodecPair zfp() const { return {zfp_reduced.get(), zfp_delta.get()}; }
};

double ratio_of(const std::string& method, const sim::Field& field,
                const CodecPair& codecs) {
  EncodeStats stats;
  make_preconditioner(method)->encode(field, codecs, &stats);
  return stats.compression_ratio;
}

TEST(PaperShapes, Fig3OneBaseLiftsLossyCodecsOnHeat3d) {
  Codecs codecs;
  const auto pair = sim::make_dataset(sim::DatasetId::kHeat3d, kScale);
  // Paper: ZFP 4x -> >15x, SZ 17x -> >40x; shape = multiples, not values.
  EXPECT_GT(ratio_of("one-base", pair.full, codecs.zfp()),
            1.5 * ratio_of("identity", pair.full, codecs.zfp()));
  EXPECT_GT(ratio_of("one-base", pair.full, codecs.sz()),
            1.5 * ratio_of("identity", pair.full, codecs.sz()));
}

TEST(PaperShapes, Fig3OneBaseBeatsMultiBase) {
  // §IV-B: multi-base's extra stored planes offset its better deltas.
  Codecs codecs;
  const auto pair = sim::make_dataset(sim::DatasetId::kHeat3d, kScale);
  EXPECT_GE(ratio_of("one-base", pair.full, codecs.zfp()),
            ratio_of("multi-base", pair.full, codecs.zfp()));
}

TEST(PaperShapes, Fig6PcaSvdLiftHeat3dAndLaplace) {
  Codecs codecs;
  for (sim::DatasetId id :
       {sim::DatasetId::kHeat3d, sim::DatasetId::kLaplace}) {
    const auto pair = sim::make_dataset(id, kScale);
    const double direct = ratio_of("identity", pair.full, codecs.zfp());
    EXPECT_GT(ratio_of("pca", pair.full, codecs.zfp()), direct)
        << sim::dataset_name(id);
  }
}

TEST(PaperShapes, Fig6FishLosesUnderEveryPreconditioner) {
  // §V-B.1: Fish's exact zeros become less-compressible near-zero deltas.
  Codecs codecs;
  const auto pair = sim::make_dataset(sim::DatasetId::kFish, kScale);
  const double direct = ratio_of("identity", pair.full, codecs.zfp());
  for (const char* method : {"pca", "svd", "wavelet"}) {
    EXPECT_LT(ratio_of(method, pair.full, codecs.zfp()), direct) << method;
  }
}

TEST(PaperShapes, Fig7Pc1DominanceTracksImprovement) {
  // The paper's rule: the more dominant PC1, the bigger the PCA win.
  // Heat3d (PC1 ~ 1.0) must improve; Umbrella (PC1 ~ 0.37) must not.
  Codecs codecs;
  const auto heat = sim::make_dataset(sim::DatasetId::kHeat3d, kScale);
  const auto md = sim::make_dataset(sim::DatasetId::kUmbrella, kScale);

  const double heat_pc1 = pca_variance_proportions(heat.full).front();
  const double md_pc1 = pca_variance_proportions(md.full).front();
  ASSERT_GT(heat_pc1, md_pc1);

  const double heat_gain =
      ratio_of("pca", heat.full, codecs.zfp()) /
      ratio_of("identity", heat.full, codecs.zfp());
  const double md_gain = ratio_of("pca", md.full, codecs.zfp()) /
                         ratio_of("identity", md.full, codecs.zfp());
  EXPECT_GT(heat_gain, 1.0);
  EXPECT_GT(heat_gain, md_gain);
}

TEST(PaperShapes, Fig9WaveletReducedRepLargerThanPcaOnHeat3d) {
  Codecs codecs;
  const auto pair = sim::make_dataset(sim::DatasetId::kHeat3d, kScale);
  EncodeStats pca, wavelet;
  make_preconditioner("pca")->encode(pair.full, codecs.zfp(), &pca);
  make_preconditioner("wavelet")->encode(pair.full, codecs.zfp(), &wavelet);
  EXPECT_GT(wavelet.reduced_bytes, pca.reduced_bytes);
}

TEST(PaperShapes, Fig10WaveletRmseWorstOnLaplace) {
  Codecs codecs;
  const auto pair = sim::make_dataset(sim::DatasetId::kLaplace, kScale);
  const auto direct = run_pipeline(*make_preconditioner("identity"),
                                   pair.full, codecs.zfp());
  const auto wavelet = run_pipeline(*make_preconditioner("wavelet"),
                                    pair.full, codecs.zfp());
  EXPECT_GT(wavelet.rmse, direct.rmse);
}

TEST(PaperShapes, Fig11PcaWinsAtMatchedRmseOnHeat3d) {
  // At comparable RMSE, PCA must reach a higher ratio than direct ZFP on
  // strongly reducible data: compare PCA@16 bits vs direct@16 bits and
  // check PCA is both more accurate *and* smaller, or trade one for a
  // clear win in the other.
  Codecs codecs;
  const auto pair = sim::make_dataset(sim::DatasetId::kHeat3d, kScale);
  const auto direct = run_pipeline(*make_preconditioner("identity"),
                                   pair.full, codecs.zfp());
  const auto pca = run_pipeline(*make_preconditioner("pca"), pair.full,
                                codecs.zfp());
  const bool better_both = pca.stats.compression_ratio >
                               direct.stats.compression_ratio &&
                           pca.rmse <= direct.rmse * 2.0;
  EXPECT_TRUE(better_both)
      << "pca: " << pca.stats.compression_ratio << "x rmse " << pca.rmse
      << " vs direct " << direct.stats.compression_ratio << "x rmse "
      << direct.rmse;
}

TEST(PaperShapes, Fig1FullAndReducedShareByteCharacteristics) {
  // Spot-check a PDE dataset: entropy within 2 bits, correlation same sign.
  const auto pair = sim::make_dataset(sim::DatasetId::kLaplace, kScale);
  const auto full = stats::byte_characteristics(pair.full.flat());
  const auto reduced = stats::byte_characteristics(pair.reduced.flat());
  EXPECT_NEAR(full.entropy, reduced.entropy, 2.5);
  EXPECT_GT(full.correlation * reduced.correlation, 0.0);
}

}  // namespace
}  // namespace rmp::core
