// Degenerate-field property suite: every registered preconditioner x both
// codec families x a gallery of hostile inputs (all-NaN, all-constant,
// single-cell, +-Inf spikes, denormal-heavy, NaN speckle) must round-trip
// through the guard layer with the bound satisfied on finite cells and the
// nonfinite cells restored bit-exactly -- or demote with a typed reason.
// No data-shaped input may escape as an uncaught exception.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "compress/factory.hpp"
#include "core/guard.hpp"
#include "core/pipeline.hpp"
#include "core/preconditioner.hpp"

namespace rmp::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced;
  std::unique_ptr<compress::Compressor> delta;
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

Codecs make_codecs(const std::string& family) {
  if (family == "sz") {
    return {compress::make_sz_original(), compress::make_sz_delta()};
  }
  return {compress::make_zfp_original(), compress::make_zfp_delta()};
}

struct DegenerateCase {
  std::string name;
  sim::Field field;
};

std::uint64_t bits_of(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

std::vector<DegenerateCase> degenerate_cases() {
  std::vector<DegenerateCase> cases;

  cases.push_back({"all-nan", sim::Field(4, 4, 4, kNan)});
  cases.push_back({"all-constant", sim::Field(8, 8, 4, 3.14159)});
  cases.push_back({"single-cell", sim::Field(1, 1, 1, 42.0)});

  sim::Field spikes(6, 6, 6);
  for (std::size_t n = 0; n < spikes.size(); ++n) {
    spikes.flat()[n] = std::sin(0.3 * static_cast<double>(n));
  }
  spikes.flat()[0] = kInf;
  spikes.flat()[spikes.size() / 2] = -kInf;
  spikes.flat()[spikes.size() - 1] = kInf;
  cases.push_back({"inf-spikes", std::move(spikes)});

  sim::Field denormal(6, 6, 6);
  for (std::size_t n = 0; n < denormal.size(); ++n) {
    denormal.flat()[n] = std::numeric_limits<double>::denorm_min() *
                     static_cast<double>(1 + n % 7);
  }
  cases.push_back({"denormal-heavy", std::move(denormal)});

  sim::Field speckle(6, 6, 6);
  for (std::size_t n = 0; n < speckle.size(); ++n) {
    speckle.flat()[n] = std::cos(0.2 * static_cast<double>(n));
    if (n % 17 == 3) speckle.flat()[n] = kNan;
  }
  cases.push_back({"nan-speckle", std::move(speckle)});

  return cases;
}

// The core property: guarded_encode never throws for any (field, model,
// codec) combination, the archive reconstructs, finite cells honor the
// bound, nonfinite cells restore bit-exactly, and the provenance names a
// model that actually ran.
TEST(GuardDegenerate, EveryModelEveryCodecEveryField) {
  const double bound = 1e-2;
  for (const std::string family : {"sz", "zfp"}) {
    const Codecs codecs = make_codecs(family);
    for (const auto& method : preconditioner_names()) {
      for (const auto& test_case : degenerate_cases()) {
        SCOPED_TRACE(family + "/" + method + "/" + test_case.name);
        const sim::Field& f = test_case.field;

        GuardOptions options;
        options.method = method;
        options.error_bound = bound;
        GuardedEncodeResult result;
        ASSERT_NO_THROW(result = guarded_encode(f, codecs.pair(), options));

        EXPECT_EQ(result.provenance.requested, method);
        EXPECT_FALSE(result.provenance.actual.empty());
        EXPECT_TRUE(result.provenance.bound_satisfied);
        if (result.provenance.actual != method) {
          EXPECT_FALSE(result.provenance.demotions.empty())
              << "demoted without a recorded reason";
          for (const auto& demotion : result.provenance.demotions) {
            EXPECT_FALSE(demotion.reason.empty());
          }
        }

        sim::Field decoded;
        ASSERT_NO_THROW(
            decoded = guarded_decode(result.container, codecs.pair()));
        ASSERT_EQ(decoded.size(), f.size());
        for (std::size_t n = 0; n < f.size(); ++n) {
          if (std::isfinite(f.flat()[n])) {
            ASSERT_TRUE(std::isfinite(decoded.flat()[n]))
                << "finite cell " << n << " decoded nonfinite";
            EXPECT_LE(std::abs(f.flat()[n] - decoded.flat()[n]), bound)
                << "cell " << n;
          } else {
            EXPECT_EQ(bits_of(decoded.flat()[n]), bits_of(f.flat()[n]))
                << "nonfinite cell " << n << " not bit-exact";
          }
        }
      }
    }
  }
}

// Unguarded encodes may reject degenerate data, but only with typed
// exceptions -- nothing data-shaped may surface as a raw crash or an
// unclassified error type.
TEST(GuardDegenerate, UnguardedFailuresAreTypedExceptions) {
  const Codecs codecs = make_codecs("sz");
  for (const auto& method : preconditioner_names()) {
    for (const auto& test_case : degenerate_cases()) {
      SCOPED_TRACE(method + "/" + test_case.name);
      try {
        const auto p = make_preconditioner(method);
        const auto container = p->encode(test_case.field, codecs.pair(),
                                         nullptr);
        (void)p->decode(container, codecs.pair(), nullptr);
      } catch (const std::exception&) {
        // Typed and catchable is the contract; which subtype is the
        // encoder's business.
      }
    }
  }
}

// RMP_GUARD_INJECT drives the fallback chain end to end for each failure
// class the guard knows how to demote on.
TEST(GuardDegenerate, InjectedFailuresDemoteWithReasons) {
  const Codecs codecs = make_codecs("sz");
  sim::Field f(6, 6, 6);
  for (std::size_t n = 0; n < f.size(); ++n) {
    f.flat()[n] = std::sin(0.1 * static_cast<double>(n));
  }

  for (const std::string inject : {"eigen", "svd", "bound"}) {
    SCOPED_TRACE(inject);
    ASSERT_EQ(setenv("RMP_GUARD_INJECT", inject.c_str(), 1), 0);
    GuardOptions options;
    options.method = inject == "svd" ? "svd" : "pca";
    options.error_bound = 1e-2;
    const auto result = guarded_encode(f, codecs.pair(), options);
    unsetenv("RMP_GUARD_INJECT");

    EXPECT_NE(result.provenance.actual, options.method);
    ASSERT_FALSE(result.provenance.demotions.empty());
    EXPECT_EQ(result.provenance.demotions.front().from, options.method);
    EXPECT_TRUE(result.provenance.bound_satisfied);
  }
}

}  // namespace
}  // namespace rmp::core
