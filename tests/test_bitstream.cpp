#include "compress/bitstream.hpp"

#include <gtest/gtest.h>

#include <random>

namespace rmp::compress {
namespace {

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter writer;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (bool b : pattern) writer.put_bit(b);
  const auto bytes = writer.take();

  BitReader reader(bytes);
  for (bool b : pattern) EXPECT_EQ(reader.get_bit(), b);
}

TEST(BitStream, MixedWidthRoundTrip) {
  BitWriter writer;
  writer.put_bits(0x5, 3);
  writer.put_bits(0xABCD, 16);
  writer.put_bits(0x1, 1);
  writer.put_bits(0xDEADBEEFCAFEBABEULL, 64);
  writer.put_bits(0x7F, 7);
  const auto bytes = writer.take();

  BitReader reader(bytes);
  EXPECT_EQ(reader.get_bits(3), 0x5u);
  EXPECT_EQ(reader.get_bits(16), 0xABCDu);
  EXPECT_EQ(reader.get_bits(1), 0x1u);
  EXPECT_EQ(reader.get_bits(64), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(reader.get_bits(7), 0x7Fu);
}

TEST(BitStream, ZeroWidthWriteIsNoop) {
  BitWriter writer;
  writer.put_bits(0xFF, 0);
  EXPECT_EQ(writer.bit_count(), 0u);
  writer.put_bits(0x3, 2);
  EXPECT_EQ(writer.bit_count(), 2u);
}

TEST(BitStream, ValueIsMaskedToWidth) {
  BitWriter writer;
  writer.put_bits(0xFF, 4);  // only low 4 bits should be kept
  writer.put_bits(0x0, 4);
  const auto bytes = writer.take();
  BitReader reader(bytes);
  EXPECT_EQ(reader.get_bits(4), 0xFu);
  EXPECT_EQ(reader.get_bits(4), 0x0u);
}

TEST(BitStream, BitCountTracksWrites) {
  BitWriter writer;
  writer.put_bits(1, 1);
  writer.put_bits(0xFFFF, 16);
  writer.put_bits(0, 64);
  EXPECT_EQ(writer.bit_count(), 81u);
}

TEST(BitStream, ReaderThrowsPastEnd) {
  BitWriter writer;
  writer.put_bits(0xAB, 8);
  const auto bytes = writer.take();
  BitReader reader(bytes);
  reader.get_bits(8);
  EXPECT_THROW(reader.get_bit(), std::out_of_range);
}

TEST(BitStream, WriterRejectsOversizedWidth) {
  BitWriter writer;
  EXPECT_THROW(writer.put_bits(0, 65), std::invalid_argument);
}

TEST(BitStream, RandomizedRoundTrip) {
  std::mt19937_64 rng(1234);
  std::uniform_int_distribution<unsigned> width_dist(1, 64);

  std::vector<std::pair<std::uint64_t, unsigned>> writes;
  BitWriter writer;
  for (int i = 0; i < 5000; ++i) {
    const unsigned width = width_dist(rng);
    const std::uint64_t value =
        width == 64 ? rng() : rng() & ((std::uint64_t{1} << width) - 1);
    writes.emplace_back(value, width);
    writer.put_bits(value, width);
  }
  const auto bytes = writer.take();

  BitReader reader(bytes);
  for (const auto& [value, width] : writes) {
    ASSERT_EQ(reader.get_bits(width), value);
  }
}

TEST(BitStream, PeekDoesNotAdvance) {
  BitWriter writer;
  writer.put_bits(0xABCD, 16);
  const auto bytes = writer.take();
  BitReader reader(bytes);
  EXPECT_EQ(reader.peek_bits(8), 0xCDu);
  EXPECT_EQ(reader.peek_bits(16), 0xABCDu);
  EXPECT_EQ(reader.bit_position(), 0u);
  EXPECT_EQ(reader.get_bits(16), 0xABCDu);
}

TEST(BitStream, PeekPastEndZeroPads) {
  BitWriter writer;
  writer.put_bits(0x3, 2);  // only 2 meaningful bits; take() pads to 8
  const auto bytes = writer.take();
  BitReader reader(bytes);
  // Peeking 16 bits over an 8-bit stream: high bits must read as zero.
  EXPECT_EQ(reader.peek_bits(16), 0x03u);
  reader.skip_bits(2);
  EXPECT_EQ(reader.peek_bits(16), 0x0u);
}

TEST(BitStream, SkipAdvancesExactly) {
  BitWriter writer;
  writer.put_bits(0b10110100, 8);
  writer.put_bits(0xFF, 8);
  const auto bytes = writer.take();
  BitReader reader(bytes);
  reader.skip_bits(3);
  EXPECT_EQ(reader.bit_position(), 3u);
  EXPECT_EQ(reader.get_bits(5), 0b10110u);
  EXPECT_EQ(reader.get_bits(8), 0xFFu);
}

TEST(BitStream, SkipPastEndThrows) {
  BitWriter writer;
  writer.put_bits(0x1, 4);
  const auto bytes = writer.take();  // one byte
  BitReader reader(bytes);
  EXPECT_THROW(reader.skip_bits(9), std::out_of_range);
  reader.skip_bits(8);  // exactly to the end is fine
  EXPECT_TRUE(reader.exhausted());
}

TEST(BitStream, PeekSkipMatchesGetBitsSequence) {
  std::mt19937_64 rng(77);
  BitWriter writer;
  std::vector<std::pair<std::uint64_t, unsigned>> writes;
  for (int i = 0; i < 500; ++i) {
    const unsigned width = 1 + rng() % 24;
    const std::uint64_t value = rng() & ((std::uint64_t{1} << width) - 1);
    writes.emplace_back(value, width);
    writer.put_bits(value, width);
  }
  const auto bytes = writer.take();
  BitReader reader(bytes);
  for (const auto& [value, width] : writes) {
    ASSERT_EQ(reader.peek_bits(width), value);
    reader.skip_bits(width);
  }
}

TEST(BitStream, PartialByteIsZeroPadded) {
  BitWriter writer;
  writer.put_bits(0x1, 1);
  const auto bytes = writer.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x01);
}

}  // namespace
}  // namespace rmp::compress
