#include "core/quality.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "compress/factory.hpp"
#include "core/identity.hpp"
#include "core/pca.hpp"

namespace rmp::core {
namespace {

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_sz_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_sz_delta();
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

sim::Field smooth(std::size_t n) {
  sim::Field f(n, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        f.at(i, j, k) = 10.0 * std::sin(0.3 * static_cast<double>(i + j)) +
                        static_cast<double>(k);
      }
    }
  }
  return f;
}

TEST(Quality, IdenticalFieldsAreLossless) {
  const sim::Field f = smooth(8);
  const auto report = compare_fields(f, f);
  EXPECT_DOUBLE_EQ(report.rmse, 0.0);
  EXPECT_DOUBLE_EQ(report.max_error, 0.0);
  EXPECT_DOUBLE_EQ(report.gradient_rmse, 0.0);
  EXPECT_DOUBLE_EQ(report.decile_distance, 0.0);
  EXPECT_TRUE(std::isinf(report.psnr_db));
}

TEST(Quality, AssessFillsEveryField) {
  Codecs codecs;
  IdentityPreconditioner identity;
  const sim::Field f = smooth(10);
  const auto report = assess_quality(identity, f, codecs.pair());
  EXPECT_EQ(report.method, "identity");
  EXPECT_GT(report.compression_ratio, 1.0);
  EXPECT_GT(report.stored_bytes, 0u);
  EXPECT_EQ(report.original_bytes, f.size() * sizeof(double));
  EXPECT_GE(report.max_error, report.rmse);
  EXPECT_GT(report.psnr_db, 40.0);  // pw-rel 1e-5 on a range ~30 field
}

TEST(Quality, GradientMetricCatchesSmoothing) {
  // A blurred copy has much larger gradient error than pointwise error
  // suggests -- that's exactly what the metric is for.
  sim::Field original(64, 1, 1);
  sim::Field blurred(64, 1, 1);
  for (std::size_t i = 0; i < 64; ++i) {
    original.at(i) = (i % 2 == 0) ? 1.0 : -1.0;  // high-frequency
    blurred.at(i) = 0.0;                         // mean value
  }
  const auto report = compare_fields(original, blurred);
  EXPECT_GT(report.gradient_rmse, report.rmse);
}

TEST(Quality, FormatReportContainsMethodAndRatio) {
  Codecs codecs;
  PcaPreconditioner pca;
  const auto report = assess_quality(pca, smooth(10), codecs.pair());
  const std::string text = format_report(report);
  EXPECT_NE(text.find("pca"), std::string::npos);
  EXPECT_NE(text.find("compression ratio"), std::string::npos);
  EXPECT_NE(text.find("gradient rmse"), std::string::npos);
}

}  // namespace
}  // namespace rmp::core
