#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parallel/decomposition.hpp"
#include "parallel/msgpass.hpp"
#include "parallel/thread_pool.hpp"

namespace rmp::parallel {
namespace {

TEST(MsgPass, PointToPoint) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> payload = {1.0, 2.0, 3.0};
      comm.send<double>(1, 7, payload);
    } else {
      const auto received = comm.recv<double>(0, 7);
      EXPECT_EQ(received, (std::vector<double>{1.0, 2.0, 3.0}));
    }
  });
}

TEST(MsgPass, TagMatching) {
  // Messages with different tags must be matched independently of their
  // arrival order.
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 1, std::vector<int>{11});
      comm.send<int>(1, 2, std::vector<int>{22});
    } else {
      const auto second = comm.recv<int>(0, 2);
      const auto first = comm.recv<int>(0, 1);
      EXPECT_EQ(second[0], 22);
      EXPECT_EQ(first[0], 11);
    }
  });
}

TEST(MsgPass, FifoWithinSourceAndTag) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        comm.send<int>(1, 5, std::vector<int>{i});
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv<int>(0, 5)[0], i);
      }
    }
  });
}

TEST(MsgPass, Broadcast) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<double> data;
    if (comm.rank() == 1) data = {3.5, 4.5};
    comm.broadcast(data, 1);
    EXPECT_EQ(data, (std::vector<double>{3.5, 4.5}));
  });
}

TEST(MsgPass, GatherInRankOrder) {
  run_ranks(4, [](Communicator& comm) {
    std::vector<int> mine = {comm.rank() * 10, comm.rank() * 10 + 1};
    const auto all = comm.gather<int>(mine, 0);
    if (comm.rank() == 0) {
      EXPECT_EQ(all, (std::vector<int>{0, 1, 10, 11, 20, 21, 30, 31}));
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(MsgPass, AllreduceSumAndMax) {
  run_ranks(5, [](Communicator& comm) {
    const double sum = comm.allreduce_sum(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(sum, 10.0);  // 0+1+2+3+4
    const double mx = comm.allreduce_max(static_cast<double>(comm.rank() % 3));
    EXPECT_DOUBLE_EQ(mx, 2.0);
  });
}

TEST(MsgPass, BarrierSynchronizes) {
  std::atomic<int> phase_one{0};
  run_ranks(4, [&](Communicator& comm) {
    phase_one.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must observe all four increments.
    EXPECT_EQ(phase_one.load(), 4);
    comm.barrier();
  });
}

TEST(MsgPass, ExceptionPropagates) {
  EXPECT_THROW(run_ranks(2,
                         [](Communicator& comm) {
                           comm.barrier();
                           if (comm.rank() == 1) {
                             throw std::runtime_error("rank failure");
                           }
                         }),
               std::runtime_error);
}

TEST(Decomposition, EvenSplit) {
  CartesianDecomposition d({12, 1, 1}, {4, 1, 1});
  EXPECT_EQ(d.world_size(), 4);
  for (int r = 0; r < 4; ++r) {
    const auto box = d.local_box(r);
    EXPECT_EQ(box[0].count(), 3u);
  }
  EXPECT_EQ(d.extent(0, 0).begin, 0u);
  EXPECT_EQ(d.extent(0, 3).end, 12u);
}

TEST(Decomposition, RemainderGoesToLeadingRanks) {
  CartesianDecomposition d({10, 1, 1}, {3, 1, 1});
  EXPECT_EQ(d.extent(0, 0).count(), 4u);
  EXPECT_EQ(d.extent(0, 1).count(), 3u);
  EXPECT_EQ(d.extent(0, 2).count(), 3u);
  // Extents tile the domain without gaps.
  EXPECT_EQ(d.extent(0, 0).end, d.extent(0, 1).begin);
  EXPECT_EQ(d.extent(0, 1).end, d.extent(0, 2).begin);
}

TEST(Decomposition, RankCoordsRoundTrip) {
  CartesianDecomposition d({8, 8, 8}, {2, 2, 2});
  for (int r = 0; r < d.world_size(); ++r) {
    EXPECT_EQ(d.rank_of(d.coords_of(r)), r);
  }
}

TEST(Decomposition, Neighbors) {
  CartesianDecomposition d({8, 8, 8}, {2, 2, 2});
  const int rank = d.rank_of({0, 0, 0});
  EXPECT_EQ(d.neighbor(rank, 0, -1), -1);   // boundary
  EXPECT_EQ(d.neighbor(rank, 0, +1), d.rank_of({1, 0, 0}));
  EXPECT_EQ(d.neighbor(rank, 2, +1), d.rank_of({0, 0, 1}));
}

TEST(Decomposition, RejectsBadConfigs) {
  EXPECT_THROW(CartesianDecomposition({4, 4, 4}, {0, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(CartesianDecomposition({4, 4, 4}, {5, 1, 1}),
               std::invalid_argument);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<int> hits(500, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 500);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 7) {
                                     throw std::logic_error("boom");
                                   }
                                 }),
               std::logic_error);
}

TEST(ThreadPool, FutureCarriesException) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRangesTilesExactly) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_ranges(hits.size(), [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);  // no gap, no overlap
}

TEST(ThreadPool, GrainBoundsChunkSize) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::size_t> chunk_sizes;
  pool.parallel_for_ranges(
      100,
      [&](std::size_t begin, std::size_t end) {
        std::lock_guard lock(m);
        chunk_sizes.push_back(end - begin);
      },
      /*grain=*/32);
  // ceil(100/32) = 4 chunks; every chunk except possibly the last >= grain.
  ASSERT_FALSE(chunk_sizes.empty());
  EXPECT_LE(chunk_sizes.size(), 4u);
  std::size_t total = 0;
  for (std::size_t c : chunk_sizes) total += c;
  EXPECT_EQ(total, 100u);
}

// Regression: a body calling parallel_for on the same pool used to
// deadlock once every worker blocked waiting for tasks only they could
// run.  The nested call must detect re-entrancy and run inline.
TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { counter.fetch_add(1); },
                      /*grain=*/1);
  }, /*grain=*/1);
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, NestedParallelForOnGlobalPoolCompletes) {
  std::atomic<int> counter{0};
  parallel_for(4, [&](std::size_t) {
    parallel_for(4, [&](std::size_t) { counter.fetch_add(1); }, 1);
  }, 1);
  EXPECT_EQ(counter.load(), 16);
}

// Regression: a mid-loop throw must neither deadlock the call nor leave
// stale tasks queued behind the pool -- the pool stays fully usable.
TEST(ThreadPool, ThrowMidLoopLeavesPoolUsable) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   executed.fetch_add(1);
                                   if (i == 3) throw std::logic_error("boom");
                                 },
                                 /*grain=*/1),
               std::logic_error);
  // All queued chunks were drained (none executed after destruction or
  // left pending): a fresh parallel_for sees a clean queue and completes.
  std::atomic<int> after{0};
  pool.parallel_for(100, [&](std::size_t) { after.fetch_add(1); }, 1);
  EXPECT_EQ(after.load(), 100);
  EXPECT_LE(executed.load(), 64);
}

TEST(ThreadPool, GlobalPoolIsShared) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.worker_count(), 1u);
}

TEST(ThreadPool, ScopedPoolOverrideRoutesFreeFunctions) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  {
    ScopedPoolOverride guard(pool);
    EXPECT_EQ(active_thread_count(), 2u);
    parallel_for(50, [&](std::size_t) { counter.fetch_add(1); }, 1);
  }
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(active_thread_count(), global_pool().worker_count());
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for_ranges(10, [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

}  // namespace
}  // namespace rmp::parallel
