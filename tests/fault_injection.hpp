// Deterministic fault-injection helpers for the robustness suites: seeded
// bit flips, truncations and targeted section corruption against the v3
// container layout (payloads concatenated at the end of the buffer, parity
// block last).
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "io/container.hpp"

namespace rmp::testing {

inline void flip_bit(std::vector<std::uint8_t>& bytes, std::size_t bit) {
  bytes.at(bit / 8) ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

inline std::size_t flip_random_bit(std::vector<std::uint8_t>& bytes,
                                   std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> dist(0, bytes.size() * 8 - 1);
  const std::size_t bit = dist(rng);
  flip_bit(bytes, bit);
  return bit;
}

inline std::vector<std::uint8_t> truncated(std::span<const std::uint8_t> bytes,
                                           std::size_t keep) {
  keep = std::min(keep, bytes.size());
  return {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep)};
}

/// Size of the v3 parity block for `container` (the largest section).
inline std::size_t parity_bytes(const io::Container& container,
                                bool with_parity) {
  if (!with_parity) return 0;
  std::size_t max = 0;
  for (const auto& section : container.sections) {
    max = std::max(max, section.bytes.size());
  }
  return max;
}

/// Offset of the first section payload inside a v3 buffer of
/// `serialized_size` bytes: payloads sit at the very end, before only the
/// optional parity block.
inline std::size_t payload_region_start(std::size_t serialized_size,
                                        const io::Container& container,
                                        bool with_parity) {
  return serialized_size - container.payload_bytes() -
         parity_bytes(container, with_parity);
}

/// Offset of section `index`'s payload (sections are concatenated in
/// directory order).
inline std::size_t section_payload_offset(std::size_t serialized_size,
                                          const io::Container& container,
                                          bool with_parity,
                                          std::size_t index) {
  std::size_t offset =
      payload_region_start(serialized_size, container, with_parity);
  for (std::size_t i = 0; i < index; ++i) {
    offset += container.sections[i].bytes.size();
  }
  return offset;
}

/// Invert a byte in the middle of section `index`'s payload.
inline void corrupt_section(std::vector<std::uint8_t>& bytes,
                            const io::Container& container, bool with_parity,
                            std::size_t index) {
  const auto& section = container.sections.at(index);
  const std::size_t offset =
      section_payload_offset(bytes.size(), container, with_parity, index);
  bytes.at(offset + section.bytes.size() / 2) ^= 0xFFu;
}

}  // namespace rmp::testing
