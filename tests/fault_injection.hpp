// Deterministic fault-injection helpers for the robustness suites: seeded
// bit flips, truncations and targeted section corruption against the v3
// container layout (payloads concatenated at the end of the buffer, parity
// block last), plus RAII hooks into the io::FileOps VFS seam for syscall-
// level faults (ENOSPC, EINTR, short writes, kill-at-Nth-op, torn writes).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "io/container.hpp"
#include "io/file_ops.hpp"

namespace rmp::testing {

/// Installs a FaultInjectingFileOps over the global seam for the current
/// scope; restores the previous ops on destruction.  Not nestable across
/// threads -- intended for single-threaded test bodies (the staging test
/// installs it before starting the worker).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(io::FaultSpec spec)
      : ops_(spec), previous_(io::set_file_ops(&ops_)) {}
  ~ScopedFaultInjection() { io::set_file_ops(previous_); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  std::uint64_t ops_seen() const noexcept { return ops_.ops_seen(); }
  std::uint64_t faults_injected() const noexcept {
    return ops_.faults_injected();
  }

 private:
  io::FaultInjectingFileOps ops_;
  io::FileOps* previous_;
};

/// A retry policy whose backoff costs no wall time (tests sweep hundreds
/// of fault points; real exponential sleeps would dominate the suite).
inline io::RetryPolicy instant_retry_policy() {
  io::RetryPolicy policy;
  policy.sleeper = [](std::chrono::microseconds) {};
  return policy;
}

inline void flip_bit(std::vector<std::uint8_t>& bytes, std::size_t bit) {
  bytes.at(bit / 8) ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

inline std::size_t flip_random_bit(std::vector<std::uint8_t>& bytes,
                                   std::mt19937_64& rng) {
  std::uniform_int_distribution<std::size_t> dist(0, bytes.size() * 8 - 1);
  const std::size_t bit = dist(rng);
  flip_bit(bytes, bit);
  return bit;
}

inline std::vector<std::uint8_t> truncated(std::span<const std::uint8_t> bytes,
                                           std::size_t keep) {
  keep = std::min(keep, bytes.size());
  return {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep)};
}

/// Size of the v3 parity block for `container` (the largest section).
inline std::size_t parity_bytes(const io::Container& container,
                                bool with_parity) {
  if (!with_parity) return 0;
  std::size_t max = 0;
  for (const auto& section : container.sections) {
    max = std::max(max, section.bytes.size());
  }
  return max;
}

/// Offset of the first section payload inside a v3 buffer of
/// `serialized_size` bytes: payloads sit at the very end, before only the
/// optional parity block.
inline std::size_t payload_region_start(std::size_t serialized_size,
                                        const io::Container& container,
                                        bool with_parity) {
  return serialized_size - container.payload_bytes() -
         parity_bytes(container, with_parity);
}

/// Offset of section `index`'s payload (sections are concatenated in
/// directory order).
inline std::size_t section_payload_offset(std::size_t serialized_size,
                                          const io::Container& container,
                                          bool with_parity,
                                          std::size_t index) {
  std::size_t offset =
      payload_region_start(serialized_size, container, with_parity);
  for (std::size_t i = 0; i < index; ++i) {
    offset += container.sections[i].bytes.size();
  }
  return offset;
}

/// Invert a byte in the middle of section `index`'s payload.
inline void corrupt_section(std::vector<std::uint8_t>& bytes,
                            const io::Container& container, bool with_parity,
                            std::size_t index) {
  const auto& section = container.sections.at(index);
  const std::size_t offset =
      section_payload_offset(bytes.size(), container, with_parity, index);
  bytes.at(offset + section.bytes.size() / 2) ^= 0xFFu;
}

}  // namespace rmp::testing
