#include "core/model_predict.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/heat.hpp"
#include "sim/synthetic.hpp"

namespace rmp::core {
namespace {

TEST(Features, ZeroFraction) {
  sim::Field f(10, 1, 1);
  for (std::size_t i = 0; i < 5; ++i) f.at(i) = 1.0;
  const auto features = extract_features(f);
  EXPECT_DOUBLE_EQ(features.zero_fraction, 0.5);
}

TEST(Features, ValueRange) {
  sim::Field f(4, 1, 1);
  f.at(0) = -2.0;
  f.at(3) = 6.0;
  EXPECT_DOUBLE_EQ(extract_features(f).value_range, 8.0);
}

TEST(Features, MidPlaneAffinityPerfectForZInvariant) {
  // A field constant along Z is exactly explained by its mid plane.
  sim::Field f(8, 8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      for (std::size_t k = 0; k < 8; ++k) {
        f.at(i, j, k) = static_cast<double>(i * j);
      }
    }
  }
  EXPECT_NEAR(extract_features(f).mid_plane_affinity, 1.0, 1e-12);
}

TEST(Features, MidPlaneAffinityZeroForNon3d) {
  sim::Field f(64, 1, 1, 1.0);
  EXPECT_DOUBLE_EQ(extract_features(f).mid_plane_affinity, 0.0);
}

TEST(Features, Pc1DominantForRankOneData) {
  // Every column is a multiple of the same profile: PC1 carries all.
  sim::Field f(32, 32, 1);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      f.at(i, j) = std::sin(0.2 * static_cast<double>(i)) *
                   (1.0 + static_cast<double>(j));
    }
  }
  EXPECT_GT(extract_features(f).pc1_proportion, 0.95);
}

TEST(Features, Pc1LowForWhiteNoise) {
  sim::Field f(64, 16, 1);
  std::uint64_t state = 88172645463325252ull;  // xorshift
  for (double& v : f.storage()) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    v = static_cast<double>(state % 1000) / 1000.0;
  }
  EXPECT_LT(extract_features(f).pc1_proportion, 0.5);
}

TEST(Predict, ManyZerosPicksIdentity) {
  // The Fish regime.
  sim::Field f(16, 16, 16);
  f.at(3, 3, 3) = 5.0;  // a single non-zero
  EXPECT_EQ(predict_best_model(f).method, "identity");
}

TEST(Predict, ZSimilarPicksOneBase) {
  sim::Field f(12, 12, 12);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      for (std::size_t k = 0; k < 12; ++k) {
        // Strong (x, y) structure, tiny z perturbation.
        f.at(i, j, k) = std::sin(0.5 * static_cast<double>(i)) *
                            static_cast<double>(j + 1) +
                        1e-4 * static_cast<double>(k);
      }
    }
  }
  EXPECT_EQ(predict_best_model(f).method, "one-base");
}

TEST(Predict, FishFieldPicksIdentity) {
  sim::FishConfig config;
  config.n = 20;
  const sim::Field f = sim::fish_velocity_field(config);
  const auto prediction = predict_best_model(f);
  EXPECT_EQ(prediction.method, "identity");
  EXPECT_GT(prediction.features.zero_fraction, 0.3);
}

TEST(Predict, RespectsCutoffOptions) {
  sim::Field f(16, 1, 1, 1.0);
  f.at(0) = 0.0;  // 1/16 zeros
  PredictOptions options;
  options.zero_fraction_cutoff = 0.01;  // absurdly strict
  EXPECT_EQ(predict_best_model(f, options).method, "identity");
}

TEST(Predict, SampledPc1MatchesFullComputation) {
  sim::HeatConfig config;
  config.n = 16;
  config.steps = 80;
  const sim::Field f = sim::heat3d_run(config);

  PredictOptions small_sample;
  small_sample.max_sample_rows = 32;
  PredictOptions big_sample;
  big_sample.max_sample_rows = 100000;  // effectively all rows

  const double sampled = extract_features(f, small_sample).pc1_proportion;
  const double full = extract_features(f, big_sample).pc1_proportion;
  EXPECT_NEAR(sampled, full, 0.15);
}

}  // namespace
}  // namespace rmp::core
