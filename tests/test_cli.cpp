// End-to-end smoke tests of the rmpc command-line tool: write a raw
// float64 field, compress it with several methods, decompress, and check
// the round trip on disk.  RMPC_BINARY is injected by CMake.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "tools/exit_codes.hpp"

namespace {

namespace fs = std::filesystem;

#ifndef RMPC_BINARY
#error "RMPC_BINARY must be defined by the build"
#endif

std::string quoted(const fs::path& p) { return "\"" + p.string() + "\""; }

int run_rmpc(const std::string& args) {
  const std::string command =
      std::string(RMPC_BINARY) + " " + args + " > /dev/null 2>&1";
  return std::system(command.c_str());
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest runs the discovered cases concurrently,
    // so a shared directory would let one TearDown delete another's files.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("rmpc_cli_test_") + info->name());
    fs::create_directories(dir_);
    // A 16x16x16 smooth field.
    data_.resize(16 * 16 * 16);
    for (std::size_t i = 0; i < data_.size(); ++i) {
      data_[i] = std::sin(0.01 * static_cast<double>(i)) * 40.0;
    }
    input_ = dir_ / "input.f64";
    std::ofstream file(input_, std::ios::binary);
    file.write(reinterpret_cast<const char*>(data_.data()),
               static_cast<std::streamsize>(data_.size() * sizeof(double)));
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::vector<double> read_back(const fs::path& path) {
    std::ifstream file(path, std::ios::binary | std::ios::ate);
    const auto bytes = static_cast<std::size_t>(file.tellg());
    std::vector<double> values(bytes / sizeof(double));
    file.seekg(0);
    file.read(reinterpret_cast<char*>(values.data()),
              static_cast<std::streamsize>(bytes));
    return values;
  }

  fs::path dir_;
  fs::path input_;
  std::vector<double> data_;
};

TEST_F(CliTest, CompressDecompressRoundTrip) {
  const fs::path archive = dir_ / "field.rmp";
  const fs::path output = dir_ / "output.f64";
  ASSERT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(archive) +
                     " --dims 16,16,16 --method pca --codec sz"),
            0);
  ASSERT_TRUE(fs::exists(archive));
  EXPECT_LT(fs::file_size(archive), fs::file_size(input_));

  ASSERT_EQ(run_rmpc("decompress " + quoted(archive) + " " + quoted(output) +
                     " --codec sz"),
            0);
  const auto decoded = read_back(output);
  ASSERT_EQ(decoded.size(), data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    ASSERT_NEAR(decoded[i], data_[i], 0.05) << i;
  }
}

TEST_F(CliTest, EveryMethodCompresses) {
  for (const std::string method :
       {"identity", "one-base", "multi-base", "pca", "svd", "wavelet",
        "tucker"}) {
    const fs::path archive = dir_ / (method + ".rmp");
    EXPECT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(archive) +
                       " --dims 16,16,16 --method " + method),
              0)
        << method;
    EXPECT_TRUE(fs::exists(archive)) << method;
  }
}

TEST_F(CliTest, AutoMethodSelection) {
  const fs::path archive = dir_ / "auto.rmp";
  EXPECT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(archive) +
                     " --dims 16,16,16 --method auto"),
            0);
  EXPECT_TRUE(fs::exists(archive));
}

TEST_F(CliTest, InfoAndStatsAndPredictSucceed) {
  const fs::path archive = dir_ / "info.rmp";
  ASSERT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(archive) +
                     " --dims 16,16,16"),
            0);
  EXPECT_EQ(run_rmpc("info " + quoted(archive)), 0);
  EXPECT_EQ(run_rmpc("predict " + quoted(input_) + " --dims 16,16,16"), 0);
  EXPECT_EQ(run_rmpc("stats " + quoted(input_) + " --dims 16,16,16"), 0);
}

TEST_F(CliTest, BadInvocationsFail) {
  EXPECT_NE(run_rmpc(""), 0);
  EXPECT_NE(run_rmpc("frobnicate x y"), 0);
  // Wrong dims (size mismatch).
  EXPECT_NE(run_rmpc("compress " + quoted(input_) + " " +
                     quoted(dir_ / "x.rmp") + " --dims 7,7,7"),
            0);
  // Missing file.
  EXPECT_NE(run_rmpc("decompress " + quoted(dir_ / "missing.rmp") + " " +
                     quoted(dir_ / "y.f64")),
            0);
  // Unknown codec.
  EXPECT_NE(run_rmpc("compress " + quoted(input_) + " " +
                     quoted(dir_ / "z.rmp") + " --dims 16,16,16 --codec gzip"),
            0);
}

#ifdef RMPGEN_BINARY
TEST_F(CliTest, RmpgenToRmpcPipeline) {
  // Generate a dataset with rmpgen, then compress it with rmpc.
  const fs::path raw = dir_ / "gen.f64";
  const std::string gen = std::string(RMPGEN_BINARY) + " Sedov_pres " +
                          quoted(raw) + " --scale 0.4 > /dev/null 2>&1";
  ASSERT_EQ(std::system(gen.c_str()), 0);
  ASSERT_TRUE(fs::exists(raw));
  const auto doubles = fs::file_size(raw) / sizeof(double);
  const auto n = static_cast<std::size_t>(std::lround(
      std::cbrt(static_cast<double>(doubles))));
  ASSERT_EQ(n * n * n, doubles);

  const std::string dims = std::to_string(n) + "," + std::to_string(n) +
                           "," + std::to_string(n);
  EXPECT_EQ(run_rmpc("compress " + quoted(raw) + " " +
                     quoted(dir_ / "gen.rmp") + " --dims " + dims +
                     " --method auto"),
            0);
}

TEST_F(CliTest, RmpgenListAndErrors) {
  ASSERT_EQ(std::system((std::string(RMPGEN_BINARY) +
                         " list > /dev/null 2>&1")
                            .c_str()),
            0);
  EXPECT_NE(std::system((std::string(RMPGEN_BINARY) +
                         " NotADataset /tmp/x.f64 > /dev/null 2>&1")
                            .c_str()),
            0);
}
#endif

void corrupt_byte(const fs::path& path, std::uintmax_t offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  file.read(&b, 1);
  b = static_cast<char>(b ^ 0x2A);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&b, 1);
}

TEST_F(CliTest, VerifyArchiveModeReportsHealthy) {
  const fs::path archive = dir_ / "healthy.rmp";
  ASSERT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(archive) +
                     " --dims 16,16,16 --method pca"),
            0);
  EXPECT_EQ(run_rmpc("verify " + quoted(archive)), 0);
}

TEST_F(CliTest, ParityRepairsCorruptionEndToEnd) {
  const fs::path archive = dir_ / "damaged.rmp";
  const fs::path repaired = dir_ / "repaired.rmp";
  const fs::path output = dir_ / "repaired.f64";
  // Parity is on by default; flip a byte in the middle of the file, which
  // lands inside exactly one section payload.
  ASSERT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(archive) +
                     " --dims 16,16,16 --method pca"),
            0);
  corrupt_byte(archive, fs::file_size(archive) / 2);

  EXPECT_EQ(run_rmpc("verify " + quoted(archive)), 0);  // repairable => OK
  ASSERT_EQ(run_rmpc("repair " + quoted(archive) + " " + quoted(repaired)), 0);
  EXPECT_EQ(run_rmpc("verify " + quoted(repaired)), 0);
  ASSERT_EQ(run_rmpc("decompress " + quoted(repaired) + " " + quoted(output)),
            0);
  const auto decoded = read_back(output);
  ASSERT_EQ(decoded.size(), data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    ASSERT_NEAR(decoded[i], data_[i], 0.05) << i;
  }
}

TEST_F(CliTest, UnprotectedCorruptionFailsVerifyAndRepair) {
  const fs::path archive = dir_ / "noparity.rmp";
  ASSERT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(archive) +
                     " --dims 16,16,16 --method pca --no-parity"),
            0);
  // v3 keeps payloads at the end; the 16-byte "meta" section is last, so
  // offset size-20 lands inside the "delta" payload.
  corrupt_byte(archive, fs::file_size(archive) - 20);

  EXPECT_NE(run_rmpc("verify " + quoted(archive)), 0);
  EXPECT_NE(run_rmpc("repair " + quoted(archive) + " " +
                     quoted(dir_ / "cant.rmp")),
            0);
  EXPECT_NE(run_rmpc("decompress " + quoted(archive) + " " +
                     quoted(dir_ / "cant.f64")),
            0);
}

TEST_F(CliTest, BestEffortDecompressSurvivesDeltaLoss) {
  const fs::path archive = dir_ / "salvage.rmp";
  const fs::path output = dir_ / "salvage.f64";
  ASSERT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(archive) +
                     " --dims 16,16,16 --method pca --no-parity"),
            0);
  corrupt_byte(archive, fs::file_size(archive) - 20);  // delta payload

  ASSERT_EQ(run_rmpc("decompress " + quoted(archive) + " " + quoted(output) +
                     " --best-effort"),
            0);
  const auto decoded = read_back(output);
  ASSERT_EQ(decoded.size(), data_.size());
  // The reduced-model-only approximation is lossier than the full decode
  // but must still track the data.
  double max_err = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    max_err = std::max(max_err, std::abs(decoded[i] - data_[i]));
  }
  EXPECT_LT(max_err, 40.0);
}

TEST_F(CliTest, MalformedNumericFlagsAreTypedUsageErrors) {
  const std::string compress_prefix = "compress " + quoted(input_) + " " +
                                      quoted(dir_ / "x.rmp") + " ";
  // Every malformed numeric value must exit with the usage status (2,
  // i.e. nonzero), never an uncaught exception (which would abort).
  for (const std::string bad :
       {std::string("--dims 16,16,16 --error-bound=abc"),
        std::string("--dims 16,16,16 --error-bound="),
        std::string("--dims 16,16,16 --error-bound -1"),
        std::string("--dims 16,16,16 --error-bound nan"),
        std::string("--dims 16,16,16 --verify-bound bogus"),
        std::string("--dims abc"), std::string("--dims ''"),
        std::string("--dims 16,-2,16"), std::string("--dims 0,16,16"),
        std::string("--dims 16,16,16,16"), std::string("--dims 16,,16"),
        std::string("--dims 16.5"), std::string("--dims 16x16x16")}) {
    const int status = run_rmpc(compress_prefix + bad);
    EXPECT_NE(status, 0) << bad;
    // std::system reports abnormal termination (uncaught throw -> abort)
    // as a non-exited status; a typed usage error always exits cleanly.
    EXPECT_TRUE(WIFEXITED(status)) << bad;
  }
}

TEST_F(CliTest, EqualsFlagSyntaxWorks) {
  const fs::path archive = dir_ / "eq.rmp";
  EXPECT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(archive) +
                     " --dims=16,16,16 --method=pca --codec=sz"
                     " --error-bound=0.5"),
            0);
  EXPECT_TRUE(fs::exists(archive));
}

TEST_F(CliTest, StatsFlagEmitsValidJson) {
  const fs::path archive = dir_ / "stats.rmp";
  const fs::path stats = dir_ / "stats.json";
  ASSERT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(archive) +
                     " --dims 16,16,16 --method pca --stats=" +
                     stats.string()),
            0);
  ASSERT_TRUE(fs::exists(stats));
  // The emitted report must pass its own schema validator.
  EXPECT_EQ(run_rmpc("stats " + quoted(stats)), 0);
}

TEST_F(CliTest, StatsValidationRejectsBadJson) {
  const fs::path bogus = dir_ / "bogus.json";
  std::ofstream(bogus) << "{\"schema\": \"rmp-obs-v1\"}";
  EXPECT_NE(run_rmpc("stats " + quoted(bogus)), 0);
  const fs::path garbage = dir_ / "garbage.json";
  std::ofstream(garbage) << "not json";
  EXPECT_NE(run_rmpc("stats " + quoted(garbage)), 0);
  EXPECT_NE(run_rmpc("stats " + quoted(dir_ / "missing.json")), 0);
}

TEST_F(CliTest, ArchivesAreByteIdenticalWithObsOnAndOff) {
  const fs::path with_obs = dir_ / "obs_on.rmp";
  const fs::path without_obs = dir_ / "obs_off.rmp";
  const std::string tail = " --dims 16,16,16 --method pca --codec sz";
  const std::string on = "RMP_OBS=1 " + std::string(RMPC_BINARY) +
                         " compress " + quoted(input_) + " " +
                         quoted(with_obs) + tail + " --stats > /dev/null 2>&1";
  const std::string off = "RMP_OBS=0 " + std::string(RMPC_BINARY) +
                          " compress " + quoted(input_) + " " +
                          quoted(without_obs) + tail + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(on.c_str()), 0);
  ASSERT_EQ(std::system(off.c_str()), 0);
  std::ifstream a(with_obs, std::ios::binary);
  std::ifstream b(without_obs, std::ios::binary);
  const std::vector<char> bytes_a{std::istreambuf_iterator<char>(a), {}};
  const std::vector<char> bytes_b{std::istreambuf_iterator<char>(b), {}};
  EXPECT_EQ(bytes_a, bytes_b);
}

int run_rmpc_env(const std::string& env, const std::string& args) {
  const std::string command = env + " " + std::string(RMPC_BINARY) + " " +
                              args + " > /dev/null 2>&1";
  return std::system(command.c_str());
}

std::vector<char> slurp_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), {}};
}

TEST_F(CliTest, SequenceWriteAndResumeAfterInjectedCrash) {
  const fs::path ref = dir_ / "ref.rmps";
  const fs::path out = dir_ / "out.rmps";
  const std::string inputs =
      quoted(input_) + " " + quoted(input_) + " " + quoted(input_);
  const std::string tail = " --dims 16,16,16 --method pca --codec sz";

  ASSERT_EQ(run_rmpc("sequence " + inputs + " " + quoted(ref) + tail), 0);
  ASSERT_TRUE(fs::exists(ref));

  // Simulated crash partway through the third step's write: the run must
  // exit with a typed error (not a signal) and leave a resumable journal,
  // never a torn destination.
  const int status = run_rmpc_env("RMP_IO_INJECT=kill@8",
                                  "sequence " + inputs + " " + quoted(out) +
                                      tail);
  ASSERT_NE(status, 0);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_FALSE(fs::exists(out));
  EXPECT_TRUE(fs::exists(dir_ / "out.rmps.part"));

  ASSERT_EQ(run_rmpc("resume " + inputs + " " + quoted(out) + tail), 0);
  ASSERT_TRUE(fs::exists(out));
  EXPECT_FALSE(fs::exists(dir_ / "out.rmps.part"));
  EXPECT_EQ(slurp_bytes(out), slurp_bytes(ref));
}

TEST_F(CliTest, ResumeOnCompleteArchiveIsANoOp) {
  const fs::path out = dir_ / "done.rmps";
  const std::string inputs = quoted(input_) + " " + quoted(input_);
  const std::string tail = " --dims 16,16,16 --method pca";
  ASSERT_EQ(run_rmpc("sequence " + inputs + " " + quoted(out) + tail), 0);
  const auto before = slurp_bytes(out);
  EXPECT_EQ(run_rmpc("resume " + inputs + " " + quoted(out) + tail), 0);
  EXPECT_EQ(slurp_bytes(out), before);
}

TEST_F(CliTest, SeekableSequenceStepDecodeAndTornTrailerSalvage) {
  const fs::path seq = dir_ / "steps.rmps";
  const std::string inputs =
      quoted(input_) + " " + quoted(input_) + " " + quoted(input_);
  ASSERT_EQ(run_rmpc("sequence " + inputs + " " + quoted(seq) +
                     " --dims 16,16,16 --method pca --seekable"),
            0);

  // Whole-sequence decode (parallel chunked path) = 3 concatenated steps.
  const fs::path all = dir_ / "all.f64";
  ASSERT_EQ(run_rmpc("decompress " + quoted(seq) + " " + quoted(all)), 0);
  const auto whole = read_back(all);
  ASSERT_EQ(whole.size(), data_.size() * 3);

  // --step K (0-based: step 0 must parse) decodes exactly slice K.
  for (const std::size_t step : {std::size_t{0}, std::size_t{2}}) {
    const fs::path one = dir_ / ("step" + std::to_string(step) + ".f64");
    ASSERT_EQ(run_rmpc("decompress " + quoted(seq) + " " + quoted(one) +
                       " --step " + std::to_string(step)),
              0);
    const auto decoded = read_back(one);
    ASSERT_EQ(decoded.size(), data_.size());
    EXPECT_TRUE(std::equal(decoded.begin(), decoded.end(),
                           whole.begin() + static_cast<std::ptrdiff_t>(
                                               step * data_.size())))
        << "step " << step;
  }

  // A trailer torn by truncation must route to the index rebuild, and
  // the salvaged decode must match the clean one.
  const fs::path torn = dir_ / "torn.rmps";
  fs::copy_file(seq, torn);
  fs::resize_file(torn, fs::file_size(torn) - 5);
  const fs::path salvaged = dir_ / "salvaged.f64";
  ASSERT_EQ(run_rmpc("decompress " + quoted(torn) + " " + quoted(salvaged)),
            0);
  EXPECT_EQ(slurp_bytes(salvaged), slurp_bytes(all));

  // --step on a plain (non-sequence) container stays a usage error.
  const fs::path archive = dir_ / "plain.rmp";
  ASSERT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(archive) +
                     " --dims 16,16,16 --method pca"),
            0);
  const int status = run_rmpc("decompress " + quoted(archive) + " " +
                              quoted(dir_ / "x.f64") + " --step 0");
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);
}

TEST_F(CliTest, InjectedDiskFullIsATypedErrorNotACrash) {
  const fs::path archive = dir_ / "full_disk.rmp";
  const int status = run_rmpc_env(
      "RMP_IO_INJECT=enospc@2",
      "compress " + quoted(input_) + " " + quoted(archive) +
          " --dims 16,16,16 --method pca");
  ASSERT_TRUE(WIFEXITED(status)) << "rmpc crashed instead of reporting";
  // ENOSPC is an I/O failure: exit code 3 per the documented table.
  EXPECT_EQ(WEXITSTATUS(status), 3);
  EXPECT_FALSE(fs::exists(archive));
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().filename().string().find(".tmp."),
              std::string::npos)
        << "leaked staging file " << entry.path();
  }
}

TEST_F(CliTest, InjectedTransientFaultIsRetriedToByteIdenticalOutput) {
  const fs::path clean = dir_ / "clean.rmp";
  const fs::path faulted = dir_ / "faulted.rmp";
  const fs::path stats = dir_ / "stats.json";
  const std::string tail = " --dims 16,16,16 --method pca --codec sz";
  ASSERT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(clean) +
                     tail),
            0);
  ASSERT_EQ(run_rmpc_env("RMP_IO_INJECT=eintr@2",
                         "compress " + quoted(input_) + " " +
                             quoted(faulted) + tail + " --stats=" +
                             stats.string()),
            0);
  EXPECT_EQ(slurp_bytes(faulted), slurp_bytes(clean));
  // The retry must be visible in the observability report.
  const std::string report(slurp_bytes(stats).data(),
                           slurp_bytes(stats).size());
  EXPECT_NE(report.find("io.retry.attempts"), std::string::npos);
  EXPECT_NE(report.find("io.fault.eintr"), std::string::npos);
}

// The exit-code table in README.md ("Exit codes") is a contract: shell
// scripts dispatch on these numbers, so each class is locked down here.
TEST_F(CliTest, UsageErrorsExitWithCode2) {
  int status = run_rmpc("compress " + quoted(input_) + " " +
                        quoted(dir_ / "u.rmp") + " --dims banana");
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);
  status = run_rmpc("compress " + quoted(input_) + " " +
                    quoted(dir_ / "u.rmp") + " --dims 16,16,16 --codec gzip");
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);
  // dims/size mismatch is a usage error, not an I/O error.
  status = run_rmpc("compress " + quoted(input_) + " " +
                    quoted(dir_ / "u.rmp") + " --dims 7,7,7");
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);
  status = run_rmpc("frobnicate x y");
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2);
}

TEST_F(CliTest, IoErrorsExitWithCode3) {
  const int status = run_rmpc("compress " + quoted(dir_ / "missing.f64") +
                              " " + quoted(dir_ / "io.rmp") +
                              " --dims 16,16,16");
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 3);
}

TEST_F(CliTest, IntegrityFailuresExitWithCode4) {
  const fs::path archive = dir_ / "broken.rmp";
  ASSERT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(archive) +
                     " --dims 16,16,16 --method pca --no-parity"),
            0);
  corrupt_byte(archive, fs::file_size(archive) - 20);  // delta payload
  int status = run_rmpc("verify " + quoted(archive));
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 4);
  status = run_rmpc("decompress " + quoted(archive) + " " +
                    quoted(dir_ / "broken.f64"));
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 4);
}

// Exit code 9 (server shutting down) is distinct from the transient
// BUSY class 7: scripts wait for a restart on 9 but back off and retry
// on 7.  The full mapping is locked at the unit level since timing a
// live daemon's drain window from a shell is inherently racy.
TEST(CliExitCodes, ShutdownAndBusyAreDistinctCodes) {
  using rmp::net::NetErrc;
  using rmp::net::NetError;
  using rmp::net::RemoteError;
  using rmp::net::Status;
  EXPECT_EQ(rmp::tools::kExitShuttingDown, 9);
  EXPECT_EQ(rmp::tools::exit_code_for_status(Status::kShuttingDown), 9);
  EXPECT_EQ(rmp::tools::exit_code_for_status(Status::kBusy), 7);
  EXPECT_EQ(rmp::tools::exit_code_for(
                RemoteError(Status::kShuttingDown, "draining")),
            9);
  EXPECT_EQ(rmp::tools::exit_code_for(
                NetError(NetErrc::kShuttingDown, "draining")),
            9);
  EXPECT_EQ(
      rmp::tools::exit_code_for(NetError(NetErrc::kBusy, "unavailable")), 7);
  EXPECT_EQ(rmp::tools::exit_code_for(
                RemoteError(Status::kDeadlineExceeded, "late")),
            6);
}

#ifdef RMPD_BINARY
pid_t spawn_rmpd(const std::vector<std::string>& extra_args) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Child: silence output and become the daemon.
  std::freopen("/dev/null", "w", stdout);
  std::freopen("/dev/null", "w", stderr);
  std::vector<char*> argv;
  static std::string binary = RMPD_BINARY;
  argv.push_back(binary.data());
  std::vector<std::string> owned = extra_args;
  for (auto& arg : owned) argv.push_back(arg.data());
  argv.push_back(nullptr);
  execv(RMPD_BINARY, argv.data());
  _exit(127);
}

std::string wait_for_port(const fs::path& port_file) {
  for (int i = 0; i < 400; ++i) {
    std::ifstream in(port_file);
    std::string port;
    if (in >> port && !port.empty()) return port;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return "";
}

TEST_F(CliTest, DaemonServesClientsAndDrainsCleanlyOnSigterm) {
  const fs::path port_file = dir_ / "port";
  const fs::path served = dir_ / "served";
  const pid_t pid = spawn_rmpd({"--port", "0", "--port-file",
                                port_file.string(), "--output-dir",
                                served.string()});
  ASSERT_GT(pid, 0);
  const std::string port = wait_for_port(port_file);
  ASSERT_FALSE(port.empty()) << "daemon never published its port";
  const std::string net = " --port " + port;

  EXPECT_EQ(run_rmpc("client ping" + net), 0);

  // Inline encode/decode round trip through the daemon.
  const fs::path archive = dir_ / "remote.rmp";
  const fs::path output = dir_ / "remote.f64";
  ASSERT_EQ(run_rmpc("client encode " + quoted(input_) + " " +
                     quoted(archive) + " --dims 16,16,16 --method pca" + net),
            0);
  ASSERT_TRUE(fs::exists(archive));
  ASSERT_EQ(run_rmpc("client decode " + quoted(archive) + " " +
                     quoted(output) + net),
            0);
  const auto decoded = read_back(output);
  ASSERT_EQ(decoded.size(), data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    ASSERT_NEAR(decoded[i], data_[i], 0.05) << i;
  }
  EXPECT_EQ(run_rmpc("client verify " + quoted(archive) + net), 0);

  // Server-side durable store and a journaled sequence step.
  EXPECT_EQ(run_rmpc("client encode " + quoted(input_) +
                     " --dims 16,16,16 --store stored.rmp" + net),
            0);
  EXPECT_TRUE(fs::exists(served / "stored.rmp"));
  EXPECT_EQ(run_rmpc("client encode " + quoted(input_) +
                     " --dims 16,16,16 --sequence soak.rmps" + net),
            0);
  EXPECT_EQ(run_rmpc("client stats" + net), 0);

  // SIGTERM drains: journaled sequences publish durably, exit status 0.
  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "daemon died of a signal";
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_TRUE(fs::exists(served / "soak.rmps"));
  EXPECT_FALSE(fs::exists(served / "soak.rmps.part"));
  EXPECT_EQ(run_rmpc("verify " + quoted(served / "stored.rmp")), 0);

  // With the daemon gone, clients get the "unavailable" exit code.
  const int refused = run_rmpc("client ping" + net);
  ASSERT_TRUE(WIFEXITED(refused));
  EXPECT_EQ(WEXITSTATUS(refused), 7);
}

TEST_F(CliTest, DaemonScrubAndRecoveryStatsAreReachableFromTheCli) {
  const fs::path port_file = dir_ / "port";
  const fs::path served = dir_ / "served";
  fs::create_directories(served);
  // Garbage planted before boot: startup recovery quarantines it.
  {
    std::ofstream out(served / "preboot_junk.rmp", std::ios::binary);
    const std::vector<char> garbage(96, '\x33');
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }
  const pid_t pid = spawn_rmpd({"--port", "0", "--port-file",
                                port_file.string(), "--output-dir",
                                served.string()});
  ASSERT_GT(pid, 0);
  const std::string port = wait_for_port(port_file);
  ASSERT_FALSE(port.empty());
  const std::string net = " --port " + port;

  EXPECT_FALSE(fs::exists(served / "preboot_junk.rmp"));
  EXPECT_TRUE(fs::exists(served / "quarantine" / "preboot_junk.rmp"));
  EXPECT_TRUE(fs::exists(served / "quarantine" / "manifest.json"));

  // A clean store scrubs clean (exit 0); planting more garbage makes the
  // on-demand scrub quarantine it and report via exit code 4.
  EXPECT_EQ(run_rmpc("client scrub" + net), 0);
  {
    std::ofstream out(served / "postboot_junk.rmp", std::ios::binary);
    const std::vector<char> garbage(96, '\x44');
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }
  const int scrub_status = run_rmpc("client scrub" + net);
  ASSERT_TRUE(WIFEXITED(scrub_status));
  EXPECT_EQ(WEXITSTATUS(scrub_status), 4);
  EXPECT_TRUE(fs::exists(served / "quarantine" / "postboot_junk.rmp"));

  // Retry flags parse and the tokened encode path works end to end.
  EXPECT_EQ(run_rmpc("client encode " + quoted(input_) +
                     " --dims 16,16,16 --sequence steps.rmps --retries 3 "
                     "--token 77" +
                     net),
            0);
  EXPECT_EQ(run_rmpc("client stats" + net), 0);

  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_TRUE(fs::exists(served / "steps.rmps"));
}

TEST_F(CliTest, DaemonDeadlineExpiryYieldsExitCode6) {
  const fs::path port_file = dir_ / "port";
  // Every job stalls 400 ms in the worker; a 50 ms deadline must lose.
  const pid_t pid = spawn_rmpd({"--port", "0", "--port-file",
                                port_file.string(), "--debug-stall-ms",
                                "400"});
  ASSERT_GT(pid, 0);
  const std::string port = wait_for_port(port_file);
  ASSERT_FALSE(port.empty());
  const int status =
      run_rmpc("client encode " + quoted(input_) + " " +
               quoted(dir_ / "late.rmp") +
               " --dims 16,16,16 --deadline-ms 50 --port " + port);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 6);
  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int wait_status = 0;
  ASSERT_EQ(waitpid(pid, &wait_status, 0), pid);
  EXPECT_EQ(WEXITSTATUS(wait_status), 0);
}
#endif

TEST_F(CliTest, ZfpCodecPathWorks) {
  const fs::path archive = dir_ / "zfp.rmp";
  const fs::path output = dir_ / "zfp_out.f64";
  ASSERT_EQ(run_rmpc("compress " + quoted(input_) + " " + quoted(archive) +
                     " --dims 16,16,16 --method svd --codec zfp"),
            0);
  ASSERT_EQ(run_rmpc("decompress " + quoted(archive) + " " + quoted(output) +
                     " --codec zfp"),
            0);
  const auto decoded = read_back(output);
  ASSERT_EQ(decoded.size(), data_.size());
}

}  // namespace
