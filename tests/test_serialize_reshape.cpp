// Unit tests for the byte-level serialization helpers and the canonical
// field<->matrix reshaping that all dimension-reduction preconditioners
// rely on, plus the Huffman decoder's malformed-stream handling.
#include <gtest/gtest.h>

#include <random>

#include "compress/huffman.hpp"
#include "core/reshape.hpp"
#include "core/serialize.hpp"

namespace rmp::core {
namespace {

TEST(Serialize, DoublesRoundTrip) {
  const std::vector<double> values = {0.0, -1.5, 3.25e300, -7e-200};
  EXPECT_EQ(bytes_to_doubles(doubles_to_bytes(values)), values);
}

TEST(Serialize, DoublesRejectRaggedBytes) {
  std::vector<std::uint8_t> bytes(13);
  EXPECT_THROW(bytes_to_doubles(bytes), std::invalid_argument);
}

TEST(Serialize, MatrixRoundTrip) {
  la::Matrix m(3, 5);
  std::mt19937 rng(9);
  std::normal_distribution<double> dist(0.0, 2.0);
  for (double& v : m.flat()) v = dist(rng);
  const la::Matrix back = bytes_to_matrix(matrix_to_bytes(m));
  EXPECT_EQ(back.rows(), 3u);
  EXPECT_EQ(back.cols(), 5u);
  EXPECT_LT(la::Matrix::max_abs_diff(back, m), 1e-300);
}

TEST(Serialize, MatrixRejectsCorruptHeader) {
  auto bytes = matrix_to_bytes(la::Matrix(2, 2, 1.0));
  bytes.resize(bytes.size() - 8);  // drop one element
  EXPECT_THROW(bytes_to_matrix(bytes), std::invalid_argument);
  EXPECT_THROW(bytes_to_matrix(std::vector<std::uint8_t>(7)),
               std::invalid_argument);
}

TEST(Serialize, EmptyMatrix) {
  const la::Matrix back = bytes_to_matrix(matrix_to_bytes(la::Matrix()));
  EXPECT_EQ(back.rows(), 0u);
  EXPECT_EQ(back.size(), 0u);
}

TEST(Serialize, U64RoundTrip) {
  const std::vector<std::uint64_t> values = {0, 1, 0xFFFFFFFFFFFFFFFFULL};
  EXPECT_EQ(bytes_to_u64s(u64s_to_bytes(values)), values);
  EXPECT_THROW(bytes_to_u64s(std::vector<std::uint8_t>(9)),
               std::invalid_argument);
}

TEST(Reshape, PrimeLength1dFallsBackToColumnVector) {
  const auto [m, n] = near_square_factors(17);
  EXPECT_EQ(m, 17u);
  EXPECT_EQ(n, 1u);
}

TEST(Reshape, ZeroCount) {
  const auto [m, n] = near_square_factors(0);
  EXPECT_EQ(m, 0u);
  EXPECT_EQ(n, 0u);
}

TEST(Reshape, MatrixToFieldRejectsWrongShape) {
  la::Matrix m(4, 4);
  EXPECT_THROW(matrix_to_field(m, 3, 3, 3), std::invalid_argument);
}

TEST(Reshape, PreservesLayoutFor3d) {
  sim::Field f(2, 3, 4);
  for (std::size_t n = 0; n < f.size(); ++n) {
    f.flat()[n] = static_cast<double>(n);
  }
  const la::Matrix m = as_matrix(f);
  EXPECT_EQ(m.rows(), 6u);
  EXPECT_EQ(m.cols(), 4u);
  // Row-major layout: entry (r, c) is flat index r*4 + c.
  EXPECT_DOUBLE_EQ(m(2, 3), 11.0);
  EXPECT_DOUBLE_EQ(m(5, 0), 20.0);
}

TEST(HuffmanErrors, TruncatedTableThrows) {
  const std::vector<std::uint32_t> symbols = {1, 2, 3, 1, 2, 1};
  auto bytes = compress::huffman_encode(symbols);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(compress::huffman_decode(bytes), std::exception);
}

TEST(HuffmanErrors, EmptyBytesThrow) {
  EXPECT_THROW(compress::huffman_decode({}), std::exception);
}

TEST(HuffmanErrors, CountLargerThanStreamThrows) {
  // Claim 1000 symbols but provide the stream for 3.
  const std::vector<std::uint32_t> symbols = {5, 6, 5};
  auto bytes = compress::huffman_encode(symbols);
  // The count lives in the first 8 bytes (little-endian u64).
  bytes[0] = 0xE8;
  bytes[1] = 0x03;  // 1000
  EXPECT_THROW(compress::huffman_decode(bytes), std::exception);
}

}  // namespace
}  // namespace rmp::core
