// Seekable archives + parallel chunked decode (DESIGN.md §12): the v4
// chunk index, the thread-safe pread-backed SequenceReader, and the
// ChunkFetcher pipeline.  Runs under the `fault` label so TSan covers
// the N-threads-one-reader and shared-fetcher paths, and ASan the
// torn-trailer / corrupt-chunk salvage paths.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/chunk_fetch.hpp"
#include "io/container.hpp"
#include "io/container_error.hpp"
#include "io/file_ops.hpp"
#include "io/sequence_file.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"

namespace rmp {
namespace {

namespace fs = std::filesystem;

/// Pass-through FileOps that counts the bytes pread returns -- the
/// accounting behind the O(step K) random-access guarantee.
class CountingFileOps : public io::FileOps {
 public:
  int open(const std::string& path, int flags,
           unsigned mode) noexcept override {
    return base_.open(path, flags, mode);
  }
  long write(int fd, const void* data, std::size_t size) noexcept override {
    return base_.write(fd, data, size);
  }
  long pread(int fd, void* data, std::size_t size,
             std::uint64_t offset) noexcept override {
    const long n = base_.pread(fd, data, size, offset);
    if (n > 0) bytes_read_ += static_cast<std::uint64_t>(n);
    return n;
  }
  long fsize(int fd) noexcept override { return base_.fsize(fd); }
  int fsync(int fd) noexcept override { return base_.fsync(fd); }
  int close(int fd) noexcept override { return base_.close(fd); }
  int rename(const std::string& from,
             const std::string& to) noexcept override {
    return base_.rename(from, to);
  }
  int unlink(const std::string& path) noexcept override {
    return base_.unlink(path);
  }
  int ftruncate(int fd, std::uint64_t size) noexcept override {
    return base_.ftruncate(fd, size);
  }

  std::uint64_t bytes_read() const noexcept { return bytes_read_; }
  void reset() noexcept { bytes_read_ = 0; }

 private:
  io::FileOps& base_ = io::real_file_ops();
  std::atomic<std::uint64_t> bytes_read_{0};
};

struct ScopedFileOps {
  explicit ScopedFileOps(io::FileOps& ops) {
    previous = io::set_file_ops(&ops);
  }
  ~ScopedFileOps() { io::set_file_ops(previous); }
  io::FileOps* previous = nullptr;
};

class SeekDecodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = fs::temp_directory_path() /
            ("rmp_seek_" + std::to_string(::getpid()) + ".rmps");
    fs::remove(path_);
    fs::remove(io::sequence_journal_path(path_));
  }
  void TearDown() override {
    fs::remove(path_);
    fs::remove(io::sequence_journal_path(path_));
  }

  /// A container with recognizable per-step payload bytes.
  static io::Container sample(std::size_t i, std::size_t payload = 256) {
    io::Container c;
    c.method = "step" + std::to_string(i);
    c.nx = i + 1;
    std::vector<std::uint8_t> data(payload);
    for (std::size_t b = 0; b < payload; ++b) {
      data[b] = static_cast<std::uint8_t>((i * 131 + b) & 0xff);
    }
    c.add("data", std::move(data));
    c.add("tag", {static_cast<std::uint8_t>(i)});
    return c;
  }

  void write_sequence(std::size_t steps, std::size_t payload = 256,
                      const io::SerializeOptions& options = {}) {
    io::SequenceWriter writer(path_, options);
    for (std::size_t i = 0; i < steps; ++i) writer.append(sample(i, payload));
    writer.finish();
  }

  fs::path path_;
};

// ---------------------------------------------------------------------------
// v4 container chunk index

TEST_F(SeekDecodeTest, V4RoundTripMatchesV3Content) {
  const io::Container original = sample(3);
  io::SerializeOptions v4;
  v4.with_chunk_index = true;
  const auto v4_bytes = io::serialize(original, v4);
  const auto v3_bytes = io::serialize(original);
  EXPECT_NE(v4_bytes, v3_bytes);  // v4 carries the index, v3 stays as-was

  io::ReadReport report;
  const io::Container decoded = io::deserialize(v4_bytes, &report);
  EXPECT_EQ(report.version, 4u);
  EXPECT_EQ(decoded.method, original.method);
  ASSERT_EQ(decoded.sections.size(), original.sections.size());
  for (std::size_t s = 0; s < decoded.sections.size(); ++s) {
    EXPECT_EQ(decoded.sections[s].bytes, original.sections[s].bytes);
  }

  io::ReadReport v3_report;
  io::deserialize(v3_bytes, &v3_report);
  EXPECT_EQ(v3_report.version, 3u);
}

TEST_F(SeekDecodeTest, V4WithParityStillRepairs) {
  const io::Container original = sample(5);
  io::SerializeOptions options;
  options.with_chunk_index = true;
  options.with_parity = true;
  auto bytes = io::serialize(original, options);
  // Flip one payload byte near the end (section data lives at the tail).
  bytes[bytes.size() / 2] ^= 0x20;
  io::ReadReport report;
  const io::Container decoded = io::deserialize(bytes, &report);
  EXPECT_EQ(decoded.find("data")->bytes, original.find("data")->bytes);
}

TEST_F(SeekDecodeTest, ContainerFileReaderServesSectionsSeekably) {
  const io::Container original = sample(7, 4096);
  const fs::path file = fs::temp_directory_path() / "rmp_seek_v4.rmp";
  io::SerializeOptions options;
  options.with_chunk_index = true;
  io::write_container(file, original, options);

  CountingFileOps counting;
  {
    ScopedFileOps install(counting);
    const io::ContainerFileReader reader(file);
    EXPECT_EQ(reader.version(), 4u);
    EXPECT_EQ(reader.shell().method, original.method);
    ASSERT_NE(reader.find("data"), nullptr);

    counting.reset();
    const auto data = reader.read_section("data");
    EXPECT_EQ(data, original.find("data")->bytes);
    // The 4 KiB section must not drag the rest of the archive with it.
    EXPECT_LE(counting.bytes_read(), original.find("data")->bytes.size());

    const io::Container all = reader.read_all();
    EXPECT_EQ(all.find("tag")->bytes, original.find("tag")->bytes);
  }
  fs::remove(file);
}

TEST_F(SeekDecodeTest, ContainerFileReaderReadsV3ByCumulativeOffsets) {
  const io::Container original = sample(2);
  const fs::path file = fs::temp_directory_path() / "rmp_seek_v3.rmp";
  io::write_container(file, original);  // default: v3, no chunk index
  const io::ContainerFileReader reader(file);
  EXPECT_EQ(reader.version(), 3u);
  EXPECT_EQ(reader.read_section("data"), original.find("data")->bytes);
  fs::remove(file);
}

// ---------------------------------------------------------------------------
// Thread-safe SequenceReader

TEST_F(SeekDecodeTest, OneReaderSharedByManyThreads) {
  constexpr std::size_t kSteps = 16;
  constexpr std::size_t kThreads = 8;
  write_sequence(kSteps);

  const io::SequenceReader reader(path_);
  ASSERT_EQ(reader.step_count(), kSteps);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread reads every step, rotated so accesses interleave and
      // overlap across threads.
      for (std::size_t round = 0; round < 4; ++round) {
        for (std::size_t i = 0; i < kSteps; ++i) {
          const std::size_t step = (i + t) % kSteps;
          const io::Container c = reader.read_step(step);
          if (c.method != "step" + std::to_string(step) ||
              c.find("data")->bytes != sample(step).find("data")->bytes) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(SeekDecodeTest, ReadStepTouchesOnlyThatStepsBytes) {
  constexpr std::size_t kSteps = 8;
  constexpr std::size_t kPayload = 8192;
  write_sequence(kSteps, kPayload);
  const auto file_size = fs::file_size(path_);

  CountingFileOps counting;
  ScopedFileOps install(counting);
  const io::SequenceReader reader(path_);
  const io::StepInfo& info = reader.step_info(3);

  counting.reset();
  const auto bytes = reader.read_step_bytes(3);
  EXPECT_EQ(bytes.size(), info.size);
  // O(step K): exactly the indexed bytes, not the archive.
  EXPECT_EQ(counting.bytes_read(), info.size);
  EXPECT_LT(counting.bytes_read(), file_size / 4);
}

TEST_F(SeekDecodeTest, OversizedIndexEntryFailsTypedBeforeAllocating) {
  write_sequence(3);
  // Fabricate a hostile trailer: entry 0 claims a size far beyond the
  // file.  The reader must throw kIndexCorrupt from the footprint check,
  // never reach the allocation.
  const io::SequenceReader good(path_);
  const io::StepInfo& entry = good.step_info(0);
  std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
  const auto trailer_start = static_cast<std::streamoff>(
      fs::file_size(path_) - 16 - 3 * 20);
  const std::uint64_t huge = entry.offset + (1ull << 60);
  file.seekp(trailer_start + 8);  // entry 0's size column
  file.write(reinterpret_cast<const char*>(&huge), 8);
  file.close();

  // The tampered trailer no longer passes the open-time bounds check, so
  // disable rebuild to observe the typed failure directly.
  try {
    const io::SequenceReader reader(
        path_, {.allow_index_rebuild = false});
    FAIL() << "hostile index entry was accepted";
  } catch (const io::ContainerError& error) {
    EXPECT_EQ(error.code(), io::ContainerErrc::kIndexCorrupt);
  }
}

TEST_F(SeekDecodeTest, TruncationInsideTrailerRoutesToRebuild) {
  write_sequence(4);
  // Cut 5 bytes out of the trailer itself: the count/magic probe now
  // reads garbage offsets, and the entry read comes up short.  Both must
  // land in the rebuild path, not produce an index from stale bytes.
  fs::resize_file(path_, fs::file_size(path_) - 5);

  const io::SequenceReader reader(path_);
  EXPECT_TRUE(reader.index_rebuilt());
  ASSERT_EQ(reader.step_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(reader.read_step(i).method, "step" + std::to_string(i));
  }
}

TEST_F(SeekDecodeTest, CorruptChunkCrcIsCountedAndSalvageSkipsTheStep) {
  write_sequence(3);
  const io::SequenceReader locate(path_);
  const io::StepInfo target = locate.step_info(1);
  ASSERT_TRUE(target.has_crc);
  {
    // Flip a byte inside step 1's payload region.
    std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
    const auto at = static_cast<std::streamoff>(target.offset + target.size -
                                                1);
    file.seekg(at);
    char b = 0;
    file.read(&b, 1);
    b = static_cast<char>(b ^ 0x11);
    file.seekp(at);
    file.write(&b, 1);
  }

  obs::set_enabled(true);
  const auto mismatches_before = obs::Registry::global().counter_value(
      "io.sequence.step_crc_mismatch");
  const io::SequenceReader reader(path_);
  EXPECT_THROW(reader.read_step(1), io::ContainerError);
  EXPECT_GT(obs::Registry::global().counter_value(
                "io.sequence.step_crc_mismatch"),
            mismatches_before);

  io::SequenceScanReport report;
  const auto survivors = reader.read_all_salvage(&report);
  EXPECT_EQ(survivors.size(), 2u);
  ASSERT_EQ(report.steps.size(), 3u);
  EXPECT_TRUE(report.steps[0].ok);
  EXPECT_FALSE(report.steps[1].ok);
  EXPECT_TRUE(report.steps[2].ok);
}

TEST_F(SeekDecodeTest, LegacyPreCrcTrailerStillReads) {
  write_sequence(3);
  // Rewrite the trailer in the legacy format: 16-byte (offset, size)
  // entries and the pre-CRC magic.  Archives written before the chunk
  // index must keep reading back unchanged.
  std::vector<io::StepInfo> entries;
  {
    const io::SequenceReader reader(path_);
    for (std::size_t i = 0; i < reader.step_count(); ++i) {
      entries.push_back(reader.step_info(i));
    }
  }
  const std::uint64_t data_end =
      fs::file_size(path_) - 16 - entries.size() * 20;
  fs::resize_file(path_, data_end);
  std::ofstream file(path_, std::ios::binary | std::ios::app);
  for (const io::StepInfo& entry : entries) {
    file.write(reinterpret_cast<const char*>(&entry.offset), 8);
    file.write(reinterpret_cast<const char*>(&entry.size), 8);
  }
  const std::uint64_t count = entries.size();
  const std::uint64_t legacy_magic = 0x51455351504D5252ULL;  // "RRMPQSEQ"
  file.write(reinterpret_cast<const char*>(&count), 8);
  file.write(reinterpret_cast<const char*>(&legacy_magic), 8);
  file.close();

  const io::SequenceReader reader(path_);
  EXPECT_FALSE(reader.index_rebuilt());
  ASSERT_EQ(reader.step_count(), 3u);
  EXPECT_FALSE(reader.step_info(0).has_crc);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(reader.read_step(i).method, "step" + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Chunk cache / prefetcher / fetcher

TEST(ChunkCacheTest, EvictsLeastRecentlyUsed) {
  core::ChunkCache cache(2);
  auto chunk = [](std::size_t i) {
    auto c = std::make_shared<io::Container>();
    c->nx = i;
    return core::ChunkPtr(std::move(c));
  };
  cache.put(0, chunk(0));
  cache.put(1, chunk(1));
  ASSERT_NE(cache.get(0), nullptr);  // refresh 0; 1 is now LRU
  cache.put(2, chunk(2));
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_NE(cache.get(0), nullptr);
  EXPECT_NE(cache.get(2), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SequentialPrefetcherTest, WindowDoublesOnStreaksAndCollapsesOnSeeks) {
  core::SequentialPrefetcher prefetcher(8);
  EXPECT_EQ(prefetcher.on_access(0, 100).size(), 1u);  // cold: window 1
  EXPECT_EQ(prefetcher.on_access(1, 100).size(), 2u);
  EXPECT_EQ(prefetcher.on_access(2, 100).size(), 4u);
  EXPECT_EQ(prefetcher.on_access(3, 100).size(), 8u);
  EXPECT_EQ(prefetcher.on_access(4, 100).size(), 8u);  // capped
  EXPECT_EQ(prefetcher.on_access(50, 100).size(), 1u);  // seek: collapse
  // Never prefetches past the end.
  EXPECT_TRUE(prefetcher.on_access(99, 100).empty());
}

TEST_F(SeekDecodeTest, FetcherCacheHitsAreCounted) {
  write_sequence(4);
  obs::set_enabled(true);
  const io::SequenceReader reader(path_);
  core::ChunkFetcher fetcher = core::make_sequence_fetcher(reader);

  const auto hits_before =
      obs::Registry::global().counter_value("chunk.cache.hits");
  const core::ChunkPtr first = fetcher.get(2);
  const core::ChunkPtr second = fetcher.get(2);
  EXPECT_EQ(first->method, "step2");
  EXPECT_EQ(second->method, "step2");
  EXPECT_GT(obs::Registry::global().counter_value("chunk.cache.hits"),
            hits_before);
}

TEST_F(SeekDecodeTest, ParallelFetchMatchesSerialAcrossThreadCounts) {
  constexpr std::size_t kSteps = 12;
  write_sequence(kSteps, 1024);
  const io::SequenceReader reader(path_);

  // Serial reference: the plain one-at-a-time read path.
  const std::vector<io::Container> serial = reader.read_all();
  ASSERT_EQ(serial.size(), kSteps);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    parallel::ThreadPool pool(threads);
    parallel::ScopedPoolOverride override_pool(pool);
    core::ChunkFetcher fetcher = core::make_sequence_fetcher(reader);
    const auto chunks = core::fetch_all(fetcher);
    ASSERT_EQ(chunks.size(), kSteps) << threads << " threads";
    for (std::size_t i = 0; i < kSteps; ++i) {
      ASSERT_NE(chunks[i], nullptr);
      // Byte-identical to serial decode, independent of thread count.
      EXPECT_EQ(io::serialize(*chunks[i]), io::serialize(serial[i]))
          << "step " << i << " with " << threads << " threads";
    }
  }
}

TEST_F(SeekDecodeTest, ManyThreadsShareOneFetcher) {
  constexpr std::size_t kSteps = 10;
  write_sequence(kSteps);
  const io::SequenceReader reader(path_);
  core::ChunkFetcher fetcher = core::make_sequence_fetcher(reader);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t round = 0; round < 3; ++round) {
        for (std::size_t i = 0; i < kSteps; ++i) {
          const std::size_t step = (i * (t + 1) + round) % kSteps;
          const core::ChunkPtr chunk = fetcher.get(step);
          if (chunk == nullptr ||
              chunk->method != "step" + std::to_string(step)) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(SeekDecodeTest, FetcherPropagatesLoaderFailuresAndRecovers) {
  std::atomic<int> calls{0};
  core::ChunkFetcher fetcher(
      4,
      [&](std::size_t index) -> core::ChunkPtr {
        if (calls.fetch_add(1) == 0) {
          throw io::ContainerError(io::ContainerErrc::kIoError,
                                   "transient read failure");
        }
        auto c = std::make_shared<io::Container>();
        c->nx = index;
        return c;
      },
      {.cache_chunks = 4, .prefetch_window = 0});
  EXPECT_THROW(fetcher.get(0), io::ContainerError);
  // A failed load must not wedge the slot: the retry decodes fresh.
  const core::ChunkPtr retried = fetcher.get(0);
  ASSERT_NE(retried, nullptr);
  EXPECT_EQ(retried->nx, 0u);
}

TEST_F(SeekDecodeTest, SeekableSequenceStepsCarryTheirOwnChunkIndex) {
  io::SerializeOptions options;
  options.with_chunk_index = true;
  write_sequence(3, 256, options);
  const io::SequenceReader reader(path_);
  io::ReadReport report;
  const auto bytes = reader.read_step_bytes(1);
  io::deserialize(bytes, &report);
  EXPECT_EQ(report.version, 4u);
}

}  // namespace
}  // namespace rmp
