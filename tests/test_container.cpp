#include "io/container.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "io/checksum.hpp"
#include "io/storage_model.hpp"

namespace rmp::io {
namespace {

Container sample() {
  Container c;
  c.method = "pca";
  c.nx = 4;
  c.ny = 5;
  c.nz = 6;
  c.add("reduced", {1, 2, 3});
  c.add("delta", {4, 5, 6, 7});
  c.add("meta", {});
  return c;
}

TEST(Container, PayloadBytes) {
  EXPECT_EQ(sample().payload_bytes(), 7u);
}

TEST(Container, FindSections) {
  const Container c = sample();
  ASSERT_NE(c.find("delta"), nullptr);
  EXPECT_EQ(c.find("delta")->bytes.size(), 4u);
  EXPECT_EQ(c.find("missing"), nullptr);
}

TEST(Container, SerializeRoundTrip) {
  const Container c = sample();
  const auto bytes = serialize(c);
  const Container back = deserialize(bytes);
  EXPECT_EQ(back.method, c.method);
  EXPECT_EQ(back.nx, c.nx);
  EXPECT_EQ(back.ny, c.ny);
  EXPECT_EQ(back.nz, c.nz);
  ASSERT_EQ(back.sections.size(), c.sections.size());
  for (std::size_t i = 0; i < c.sections.size(); ++i) {
    EXPECT_EQ(back.sections[i].name, c.sections[i].name);
    EXPECT_EQ(back.sections[i].bytes, c.sections[i].bytes);
  }
}

TEST(Container, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_THROW(deserialize(garbage), std::runtime_error);
}

TEST(Container, DeserializeRejectsTruncation) {
  auto bytes = serialize(sample());
  bytes.resize(bytes.size() - 2);
  EXPECT_THROW(deserialize(bytes), std::runtime_error);
}

TEST(Container, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "rmp_container_test.bin";
  const Container c = sample();
  write_container(path, c);
  const Container back = read_container(path);
  EXPECT_EQ(back.method, c.method);
  EXPECT_EQ(back.payload_bytes(), c.payload_bytes());
  std::filesystem::remove(path);
}

TEST(Container, ReadMissingFileThrows) {
  EXPECT_THROW(read_container("/nonexistent/rmp.bin"), std::runtime_error);
}

TEST(Container, ReadEmptyFileThrowsTyped) {
  const auto path =
      std::filesystem::temp_directory_path() / "rmp_container_empty.bin";
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  try {
    read_container(path);
    FAIL() << "empty file accepted";
  } catch (const ContainerError& e) {
    EXPECT_EQ(e.code(), ContainerErrc::kTruncated);
  }
  std::filesystem::remove(path);
}

TEST(Container, WriteLeavesNoTempFileBehind) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = dir / "rmp_container_atomic.bin";
  write_container(path, sample());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(dir / "rmp_container_atomic.bin.tmp"));
  std::filesystem::remove(path);
}

// Helpers replaying the legacy v2 byte layout so the adversarial-length
// tests can hand-craft inputs whose whole-file CRC still checks out.
void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}
void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}
void append_str(std::vector<std::uint8_t>& out, const std::string& s) {
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}
std::vector<std::uint8_t> v2_header(std::uint32_t section_count) {
  std::vector<std::uint8_t> out;
  append_u32(out, 0x50434D52u);
  append_u32(out, 2u);
  append_str(out, "pca");
  append_u64(out, 4);
  append_u64(out, 5);
  append_u64(out, 6);
  append_u32(out, section_count);
  return out;
}

// A blob length near UINT64_MAX must not wrap the cursor bounds check
// into a bogus success (or a giant allocation).
TEST(Container, AdversarialBlobLengthRejectedWithoutOverflow) {
  auto bytes = v2_header(1);
  append_str(bytes, "delta");
  append_u64(bytes, UINT64_MAX - 7);  // offset + n wraps past zero
  append_u32(bytes, crc32(bytes));
  try {
    deserialize(bytes);
    FAIL() << "wrapping blob length accepted";
  } catch (const ContainerError& e) {
    EXPECT_EQ(e.code(), ContainerErrc::kTruncated);
  }
}

// A 4 GiB string length must be bounds-checked before any allocation.
TEST(Container, AdversarialStringLengthRejectedBeforeAllocation) {
  std::vector<std::uint8_t> bytes;
  append_u32(bytes, 0x50434D52u);
  append_u32(bytes, 2u);
  append_u32(bytes, 0xFFFFFFFFu);  // method-string length
  append_u32(bytes, crc32(bytes));
  try {
    deserialize(bytes);
    FAIL() << "oversized string length accepted";
  } catch (const ContainerError& e) {
    EXPECT_EQ(e.code(), ContainerErrc::kTruncated);
  }
}

TEST(Container, TrailingGarbageIsRejected) {
  auto bytes = serialize(sample());
  bytes.push_back(0xAB);
  EXPECT_THROW(deserialize(bytes), ContainerError);
}

TEST(Container, ProbeFindsFootprintAndRejectsGarbage) {
  const auto bytes = serialize(sample(), {.with_parity = true});
  const auto footprint = probe_container(bytes);
  ASSERT_TRUE(footprint.has_value());
  EXPECT_EQ(*footprint, bytes.size());

  std::vector<std::uint8_t> garbage(64, 0x5A);
  EXPECT_FALSE(probe_container(garbage).has_value());
  EXPECT_FALSE(probe_container({}).has_value());
}

TEST(StorageModel, IoTimeScalesWithBytes) {
  StorageModel model;
  model.filesystem_bandwidth = 1e9;
  model.write_latency = 0.0;
  EXPECT_NEAR(model.io_time(1, 1e9), 1.0, 1e-12);
  EXPECT_NEAR(model.io_time(4, 1e9), 4.0, 1e-12);
}

TEST(StorageModel, CompressionShrinksIoTime) {
  EndToEndScenario scenario;
  const auto baseline = make_baseline_row(scenario);
  const auto zfp = make_row(scenario, "ZFP+I/O", 12.0, 4.0);
  EXPECT_LT(zfp.io_time, baseline.io_time);
  EXPECT_NEAR(zfp.io_time * 4.0, baseline.io_time,
              baseline.io_time * 0.05 + 4 * scenario.storage.write_latency);
}

TEST(StorageModel, HighOverheadMethodCanLose) {
  // The Table IV effect: PCA's compression time can cancel its I/O win.
  EndToEndScenario scenario;
  const auto baseline = make_baseline_row(scenario);
  const auto pca = make_row(scenario, "PCA(ZFP)+I/O", 45.0, 12.0);
  EXPECT_GT(pca.total_time, baseline.total_time * 0.9);
}

TEST(StorageModel, StagingBeatsSynchronousPipelines) {
  EndToEndScenario scenario;
  const auto staging = make_staging_row(scenario, "Staging+PCA+I/O");
  const auto pca = make_row(scenario, "PCA(ZFP)+I/O", 45.0, 12.0);
  EXPECT_LT(staging.total_time, pca.total_time);
}

TEST(StorageModel, RejectsNonPositiveRatio) {
  EndToEndScenario scenario;
  EXPECT_THROW(make_row(scenario, "bad", 1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace rmp::io
