#include "io/container.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "io/storage_model.hpp"

namespace rmp::io {
namespace {

Container sample() {
  Container c;
  c.method = "pca";
  c.nx = 4;
  c.ny = 5;
  c.nz = 6;
  c.add("reduced", {1, 2, 3});
  c.add("delta", {4, 5, 6, 7});
  c.add("meta", {});
  return c;
}

TEST(Container, PayloadBytes) {
  EXPECT_EQ(sample().payload_bytes(), 7u);
}

TEST(Container, FindSections) {
  const Container c = sample();
  ASSERT_NE(c.find("delta"), nullptr);
  EXPECT_EQ(c.find("delta")->bytes.size(), 4u);
  EXPECT_EQ(c.find("missing"), nullptr);
}

TEST(Container, SerializeRoundTrip) {
  const Container c = sample();
  const auto bytes = serialize(c);
  const Container back = deserialize(bytes);
  EXPECT_EQ(back.method, c.method);
  EXPECT_EQ(back.nx, c.nx);
  EXPECT_EQ(back.ny, c.ny);
  EXPECT_EQ(back.nz, c.nz);
  ASSERT_EQ(back.sections.size(), c.sections.size());
  for (std::size_t i = 0; i < c.sections.size(); ++i) {
    EXPECT_EQ(back.sections[i].name, c.sections[i].name);
    EXPECT_EQ(back.sections[i].bytes, c.sections[i].bytes);
  }
}

TEST(Container, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_THROW(deserialize(garbage), std::runtime_error);
}

TEST(Container, DeserializeRejectsTruncation) {
  auto bytes = serialize(sample());
  bytes.resize(bytes.size() - 2);
  EXPECT_THROW(deserialize(bytes), std::runtime_error);
}

TEST(Container, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "rmp_container_test.bin";
  const Container c = sample();
  write_container(path, c);
  const Container back = read_container(path);
  EXPECT_EQ(back.method, c.method);
  EXPECT_EQ(back.payload_bytes(), c.payload_bytes());
  std::filesystem::remove(path);
}

TEST(Container, ReadMissingFileThrows) {
  EXPECT_THROW(read_container("/nonexistent/rmp.bin"), std::runtime_error);
}

TEST(StorageModel, IoTimeScalesWithBytes) {
  StorageModel model;
  model.filesystem_bandwidth = 1e9;
  model.write_latency = 0.0;
  EXPECT_NEAR(model.io_time(1, 1e9), 1.0, 1e-12);
  EXPECT_NEAR(model.io_time(4, 1e9), 4.0, 1e-12);
}

TEST(StorageModel, CompressionShrinksIoTime) {
  EndToEndScenario scenario;
  const auto baseline = make_baseline_row(scenario);
  const auto zfp = make_row(scenario, "ZFP+I/O", 12.0, 4.0);
  EXPECT_LT(zfp.io_time, baseline.io_time);
  EXPECT_NEAR(zfp.io_time * 4.0, baseline.io_time,
              baseline.io_time * 0.05 + 4 * scenario.storage.write_latency);
}

TEST(StorageModel, HighOverheadMethodCanLose) {
  // The Table IV effect: PCA's compression time can cancel its I/O win.
  EndToEndScenario scenario;
  const auto baseline = make_baseline_row(scenario);
  const auto pca = make_row(scenario, "PCA(ZFP)+I/O", 45.0, 12.0);
  EXPECT_GT(pca.total_time, baseline.total_time * 0.9);
}

TEST(StorageModel, StagingBeatsSynchronousPipelines) {
  EndToEndScenario scenario;
  const auto staging = make_staging_row(scenario, "Staging+PCA+I/O");
  const auto pca = make_row(scenario, "PCA(ZFP)+I/O", 45.0, 12.0);
  EXPECT_LT(staging.total_time, pca.total_time);
}

TEST(StorageModel, RejectsNonPositiveRatio) {
  EndToEndScenario scenario;
  EXPECT_THROW(make_row(scenario, "bad", 1.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace rmp::io
