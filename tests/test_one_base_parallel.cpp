#include "core/one_base_parallel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "compress/factory.hpp"
#include "core/projection.hpp"
#include "sim/heat.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_zfp_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_zfp_delta();
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

sim::Field heat_field(std::size_t n = 16) {
  sim::HeatConfig config;
  config.n = n;
  config.steps = 100;
  return sim::heat3d_run(config);
}

TEST(OneBaseParallel, RoundTripAcrossRankCounts) {
  Codecs codecs;
  const sim::Field f = heat_field();
  for (int ranks : {1, 2, 3, 4, 5}) {
    const auto encoded = one_base_encode_parallel(f, codecs.pair(), ranks);
    ASSERT_EQ(encoded.rank_containers.size(), static_cast<std::size_t>(ranks));
    EXPECT_FALSE(encoded.plane_bytes.empty());

    const sim::Field decoded =
        one_base_decode_parallel(encoded, codecs.pair(), ranks);
    // 8-bit delta precision on a hot_value=100 field: ~0.2% of range.
    EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 0.5) << ranks;
  }
}

TEST(OneBaseParallel, MatchesSerialOneBaseQuality) {
  Codecs codecs;
  const sim::Field f = heat_field();

  OneBasePreconditioner serial;
  const auto serial_container = serial.encode(f, codecs.pair(), nullptr);
  const auto serial_decoded =
      serial.decode(serial_container, codecs.pair(), nullptr);

  const auto encoded = one_base_encode_parallel(f, codecs.pair(), 4);
  const auto parallel_decoded =
      one_base_decode_parallel(encoded, codecs.pair(), 4);

  // Same algorithm, same codecs: reconstruction error must be comparable
  // (block boundaries shift slightly, so not bit-identical).
  const double serial_rmse = stats::rmse(f.flat(), serial_decoded.flat());
  const double parallel_rmse = stats::rmse(f.flat(), parallel_decoded.flat());
  EXPECT_LT(parallel_rmse, serial_rmse * 4 + 1e-6);
}

TEST(OneBaseParallel, TotalBytesAccounting) {
  Codecs codecs;
  const sim::Field f = heat_field();
  const auto encoded = one_base_encode_parallel(f, codecs.pair(), 3);
  std::size_t expected = encoded.plane_bytes.size();
  for (const auto& container : encoded.rank_containers) {
    expected += container.payload_bytes();
  }
  EXPECT_EQ(encoded.total_bytes(), expected);
  EXPECT_GT(encoded.total_bytes(), 0u);
}

TEST(OneBaseParallel, CompressionComparableToSerial) {
  Codecs codecs;
  const sim::Field f = heat_field();

  EncodeStats serial_stats;
  OneBasePreconditioner().encode(f, codecs.pair(), &serial_stats);
  const auto encoded = one_base_encode_parallel(f, codecs.pair(), 4);

  // Per-slab compression loses some cross-slab context; allow 2x.
  EXPECT_LT(encoded.total_bytes(), serial_stats.total_bytes * 2);
}

TEST(OneBaseParallel, RejectsBadInput) {
  Codecs codecs;
  const sim::Field f1(64, 1, 1);
  EXPECT_THROW(one_base_encode_parallel(f1, codecs.pair(), 2),
               std::invalid_argument);
  const sim::Field f3(4, 4, 4);
  EXPECT_THROW(one_base_encode_parallel(f3, codecs.pair(), 0),
               std::invalid_argument);
  EXPECT_THROW(one_base_encode_parallel(f3, codecs.pair(), 5),
               std::invalid_argument);
}

TEST(OneBaseParallel, DecodeValidatesRankCount) {
  Codecs codecs;
  const sim::Field f = heat_field();
  const auto encoded = one_base_encode_parallel(f, codecs.pair(), 2);
  EXPECT_THROW(one_base_decode_parallel(encoded, codecs.pair(), 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace rmp::core
