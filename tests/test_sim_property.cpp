// Parameterized physical-invariant sweeps across the data generators:
// every configuration the registry or a bench might use must produce
// physically sane fields, not just the defaults the unit tests cover.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "sim/heat.hpp"
#include "sim/laplace.hpp"
#include "sim/md.hpp"
#include "sim/sedov.hpp"
#include "sim/synthetic.hpp"
#include "sim/wave.hpp"

namespace rmp::sim {
namespace {

class HeatSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(HeatSweep, MaximumPrincipleHolds) {
  const auto& [n, steps] = GetParam();
  HeatConfig config;
  config.n = n;
  config.steps = steps;
  const Field u = heat3d_run(config);
  for (double v : u.flat()) {
    ASSERT_GE(v, -1e-9);
    ASSERT_LE(v, config.hot_value + 1e-9);
  }
}

TEST_P(HeatSweep, TotalHeatDecreases) {
  const auto& [n, steps] = GetParam();
  HeatConfig config;
  config.n = n;
  config.steps = steps;
  const Field initial = heat3d_initial(config);
  const Field final_state = heat3d_run(config);
  double before = 0, after = 0;
  for (double v : initial.flat()) before += v;
  for (double v : final_state.flat()) after += v;
  EXPECT_LT(after, before);
  EXPECT_GT(after, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Grids, HeatSweep,
                         ::testing::Combine(::testing::Values(12, 16, 24),
                                            ::testing::Values(50, 200)));

class HeatOffsetSweep : public ::testing::TestWithParam<double> {};

TEST_P(HeatOffsetSweep, OffCenterBlobBreaksSymmetryProportionally) {
  HeatConfig config;
  config.n = 16;
  config.steps = 80;
  config.hot_center_z = GetParam();
  const Field u = heat3d_run(config);
  double asym = 0.0;
  for (std::size_t i = 0; i < config.n; ++i) {
    for (std::size_t j = 0; j < config.n; ++j) {
      for (std::size_t k = 0; k < config.n / 2; ++k) {
        asym = std::max(asym, std::fabs(u.at(i, j, k) -
                                        u.at(i, j, config.n - 1 - k)));
      }
    }
  }
  if (GetParam() == 0.5) {
    EXPECT_LT(asym, 1e-9);
  } else {
    EXPECT_GT(asym, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Centers, HeatOffsetSweep,
                         ::testing::Values(0.5, 0.55, 0.62, 0.7));

class LaplaceSweep : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceSweep, PeakBoundaryValueScalesWithModulation) {
  LaplaceConfig config;
  config.n = 14;
  config.max_sweeps = 400;
  config.z_modulation = GetParam();
  const Field u = laplace3d_run(config);
  // The heated patch's amplitude peaks at hot * (1 + modulation) at the
  // z-midpoint of the x = 0 face, and the maximum principle caps the
  // whole field by it.
  double peak = 0.0;
  for (double v : u.flat()) {
    ASSERT_GE(v, -1e-9);
    peak = std::max(peak, v);
  }
  const double expected = config.hot_value * (1.0 + config.z_modulation);
  EXPECT_LE(peak, expected + 1e-9);
  EXPECT_GT(peak, config.hot_value * 0.99);  // the patch itself is in-field
}

INSTANTIATE_TEST_SUITE_P(Modulations, LaplaceSweep,
                         ::testing::Values(0.0, 0.05, 0.1, 0.3));

class WaveSweep : public ::testing::TestWithParam<double> {};

TEST_P(WaveSweep, StableCflKeepsEnergyBounded) {
  WaveConfig config;
  config.n = 200;
  config.steps = 1500;
  config.cfl = GetParam();
  const Field u = wave1d_run(config);
  for (double v : u.flat()) {
    ASSERT_LE(std::fabs(v), 3.0) << "cfl=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Courant, WaveSweep,
                         ::testing::Values(0.3, 0.5, 0.8, 1.0));

class SedovSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SedovSweep, PressureProfileRisesToShockThenAmbient) {
  const auto& [time, gamma] = GetParam();
  SedovConfig config;
  config.n = 20;
  config.time = time;
  config.gamma = gamma;
  const Field p = sedov_pressure_field(config);
  // Along the +x axis from the center: the interior profile rises
  // monotonically toward the shock front, and beyond it everything is
  // exactly ambient.
  const std::size_t c = config.n / 2;
  double previous = p.at(c, c, c);
  bool inside = true;
  for (std::size_t i = c + 1; i < config.n; ++i) {
    const double value = p.at(i, c, c);
    if (value <= config.p0 * 1.0001) inside = false;
    if (inside) {
      EXPECT_GE(value, previous - 1e-12) << "i=" << i;
    } else {
      EXPECT_NEAR(value, config.p0, config.p0 * 1e-6);
    }
    previous = value;
  }
}

TEST_P(SedovSweep, AmbientOutsideShock) {
  const auto& [time, gamma] = GetParam();
  SedovConfig config;
  config.n = 20;
  config.time = time;
  config.gamma = gamma;
  const double radius = sedov_shock_radius(config);
  const Field p = sedov_pressure_field(config);
  const double h = config.domain / static_cast<double>(config.n - 1);
  for (std::size_t i = 0; i < config.n; ++i) {
    for (std::size_t j = 0; j < config.n; ++j) {
      for (std::size_t k = 0; k < config.n; ++k) {
        const double x = static_cast<double>(i) * h - 0.5 * config.domain;
        const double y = static_cast<double>(j) * h - 0.5 * config.domain;
        const double z = static_cast<double>(k) * h - 0.5 * config.domain;
        if (std::sqrt(x * x + y * y + z * z) > radius * 1.001) {
          ASSERT_DOUBLE_EQ(p.at(i, j, k), config.p0);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Times, SedovSweep,
    ::testing::Combine(::testing::Values(0.25, 0.5, 1.0),
                       ::testing::Values(1.4, 5.0 / 3.0)));

class FishSweep : public ::testing::TestWithParam<double> {};

TEST_P(FishSweep, ZeroFractionGrowsWithThreshold) {
  FishConfig config;
  config.n = 20;
  config.zero_threshold = GetParam();
  const Field v = fish_velocity_field(config);
  std::size_t zeros = 0;
  for (double x : v.flat()) {
    ASSERT_GE(x, 0.0);
    if (x == 0.0) ++zeros;
  }
  // Higher threshold -> at least as many zeros as the smallest setting.
  EXPECT_GT(zeros, 0u);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FishSweep,
                         ::testing::Values(1e-4, 1e-3, 1e-2, 1e-1));

class AstroSeedSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(AstroSeedSweep, TurbulenceIsSeededAndBounded) {
  AstroConfig config;
  config.n = 16;
  config.seed = GetParam();
  const Field a = astro_velocity_field(config);
  const Field b = astro_velocity_field(config);
  for (std::size_t n = 0; n < a.size(); ++n) {
    ASSERT_EQ(a.flat()[n], b.flat()[n]);  // deterministic
    ASSERT_GE(a.flat()[n], 0.0);
    ASSERT_LE(a.flat()[n], config.vmax * (1.0 + config.turbulence) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AstroSeedSweep, ::testing::Values(1, 7, 99));

class MdSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(MdSweep, ThermostatTracksTarget) {
  const auto& [atoms, temperature] = GetParam();
  MdConfig config;
  config.atoms = atoms;
  config.temperature = temperature;
  config.steps = 80;
  MdSimulation simulation(config);
  simulation.run(config.steps);
  EXPECT_NEAR(simulation.temperature(), temperature, temperature * 0.6);
  for (double x : simulation.positions()) {
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, simulation.box_length());
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, MdSweep,
                         ::testing::Combine(::testing::Values(64, 128, 256),
                                            ::testing::Values(0.5, 1.0)));

}  // namespace
}  // namespace rmp::sim
