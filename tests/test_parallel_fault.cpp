// Fault injection for the parallel-slabs container path: the meta section
// comes off disk and must not be trusted.  A corrupt slab count used to
// either silently return an all-zero field (slabs == 0) or drive
// unvalidated loops and section lookups (huge slabs); both must surface
// as io::ContainerError{kSectionMalformed}.  Also pins down determinism:
// the encoded bytes may not depend on the thread count.
#include "core/parallel_compress.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "compress/factory.hpp"
#include "core/serialize.hpp"
#include "io/container.hpp"
#include "io/container_error.hpp"

namespace rmp::core {
namespace {

sim::Field wavy_field(std::size_t nx, std::size_t ny, std::size_t nz) {
  sim::Field f(nx, ny, nz);
  for (std::size_t n = 0; n < f.size(); ++n) {
    f.flat()[n] = std::sin(0.05 * static_cast<double>(n));
  }
  return f;
}

io::Container encoded_container() {
  const auto codec = compress::make_fpc();
  return compress_field_parallel(wavy_field(6, 6, 8), *codec, {4, 2});
}

void overwrite_meta(io::Container& container, std::uint64_t slabs) {
  for (auto& section : container.sections) {
    if (section.name == "meta") {
      const std::uint64_t meta[1] = {slabs};
      section.bytes = u64s_to_bytes(meta);
      return;
    }
  }
  FAIL() << "container has no meta section";
}

TEST(ParallelSlabsFault, ZeroSlabCountIsMalformedNotZeroField) {
  const auto codec = compress::make_fpc();
  auto container = encoded_container();
  overwrite_meta(container, 0);
  try {
    decompress_field_parallel(container, *codec, 2);
    FAIL() << "corrupt slabs == 0 decoded without error";
  } catch (const io::ContainerError& e) {
    EXPECT_EQ(e.code(), io::ContainerErrc::kSectionMalformed);
    EXPECT_EQ(e.section(), "meta");
  }
}

TEST(ParallelSlabsFault, HugeSlabCountIsMalformed) {
  const auto codec = compress::make_fpc();
  auto container = encoded_container();
  overwrite_meta(container, 1u << 20);  // far beyond nz == 8
  try {
    decompress_field_parallel(container, *codec, 2);
    FAIL() << "corrupt huge slab count decoded without error";
  } catch (const io::ContainerError& e) {
    EXPECT_EQ(e.code(), io::ContainerErrc::kSectionMalformed);
    EXPECT_EQ(e.section(), "meta");
  }
}

TEST(ParallelSlabsFault, SlabCountJustPastNzIsMalformed) {
  const auto codec = compress::make_fpc();
  auto container = encoded_container();
  overwrite_meta(container, container.nz + 1);
  EXPECT_THROW(decompress_field_parallel(container, *codec, 2),
               io::ContainerError);
  EXPECT_THROW(slab_count(container), io::ContainerError);
}

TEST(ParallelSlabsFault, EmptyMetaIsMalformed) {
  const auto codec = compress::make_fpc();
  auto container = encoded_container();
  for (auto& section : container.sections) {
    if (section.name == "meta") section.bytes.clear();
  }
  EXPECT_THROW(decompress_field_parallel(container, *codec, 2),
               io::ContainerError);
  EXPECT_THROW(slab_count(container), io::ContainerError);
}

TEST(ParallelSlabsFault, TruncatedMetaIsMalformed) {
  const auto codec = compress::make_fpc();
  auto container = encoded_container();
  for (auto& section : container.sections) {
    if (section.name == "meta") section.bytes.resize(3);  // not a whole u64
  }
  EXPECT_THROW(decompress_field_parallel(container, *codec, 2),
               io::ContainerError);
}

TEST(ParallelSlabsFault, SlabCountValidatesBeforeRoiDecode) {
  const auto codec = compress::make_fpc();
  auto container = encoded_container();
  overwrite_meta(container, 0);
  EXPECT_THROW(decompress_slab(container, *codec, 0), io::ContainerError);
}

TEST(ParallelSlabsFault, ValidContainerStillDecodes) {
  const auto codec = compress::make_fpc();
  const sim::Field f = wavy_field(6, 6, 8);
  const auto container = compress_field_parallel(f, *codec, {4, 2});
  const sim::Field decoded = decompress_field_parallel(container, *codec, 2);
  for (std::size_t n = 0; n < f.size(); ++n) {
    ASSERT_EQ(decoded.flat()[n], f.flat()[n]);
  }
}

// Determinism across thread counts: the container -- sections, order, and
// serialized bytes -- must be a pure function of the field and codec.
TEST(ParallelSlabsFault, EncodeIsByteIdenticalAcrossThreadCounts) {
  const auto codec = compress::make_zfp_original();
  const sim::Field f = wavy_field(10, 10, 16);
  const auto reference = io::serialize(
      compress_field_parallel(f, *codec, {8, 1}));
  for (std::size_t threads : {2u, 4u, 8u}) {
    const auto bytes = io::serialize(
        compress_field_parallel(f, *codec, {8, threads}));
    EXPECT_EQ(bytes, reference) << "threads=" << threads;
  }
}

TEST(ParallelSlabsFault, RepeatedEncodeIsByteIdentical) {
  const auto codec = compress::make_zfp_original();
  const sim::Field f = wavy_field(10, 10, 16);
  const auto first = io::serialize(compress_field_parallel(f, *codec, {8, 4}));
  const auto second = io::serialize(compress_field_parallel(f, *codec, {8, 4}));
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace rmp::core
