#include "compress/zfp_like.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace rmp::compress {
namespace {

std::vector<double> smooth_3d(std::size_t n) {
  std::vector<double> data(n * n * n);
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k, ++idx) {
        const double x = static_cast<double>(i) / static_cast<double>(n);
        const double y = static_cast<double>(j) / static_cast<double>(n);
        const double z = static_cast<double>(k) / static_cast<double>(n);
        data[idx] = std::sin(3 * x) + std::cos(2 * y) * z + x * y;
      }
    }
  }
  return data;
}

TEST(Zfp, HighPrecisionNearLossless1d) {
  ZfpCompressor codec({ZfpMode::kFixedPrecision, 62, 0.0});
  std::vector<double> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(0.3 * static_cast<double>(i));
  }
  const auto decoded = codec.decompress(codec.compress(data, Dims::d1(64)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(decoded[i], data[i], 1e-14);
  }
}

TEST(Zfp, HighPrecisionNearLossless2d) {
  ZfpCompressor codec({ZfpMode::kFixedPrecision, 62, 0.0});
  std::vector<double> data(32 * 32);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::cos(0.05 * static_cast<double>(i)) * 100.0;
  }
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d2(32, 32)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(decoded[i], data[i], 1e-12);
  }
}

TEST(Zfp, HighPrecisionNearLossless3d) {
  ZfpCompressor codec({ZfpMode::kFixedPrecision, 62, 0.0});
  const auto data = smooth_3d(8);
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d3(8, 8, 8)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(decoded[i], data[i], 1e-13);
  }
}

TEST(Zfp, SixteenBitPrecisionHasModestError) {
  ZfpCompressor codec({ZfpMode::kFixedPrecision, 16, 0.0});
  const auto data = smooth_3d(16);
  const auto stream = codec.compress(data, Dims::d3(16, 16, 16));
  const auto decoded = codec.decompress(stream);
  // ~16 bit planes of a range-2 signal: error well below 1e-2.
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(decoded[i], data[i], 1e-2);
  }
  // And the stream should be well under 25% of the input.
  EXPECT_LT(stream.size(), data.size() * sizeof(double) / 4);
}

TEST(Zfp, LowerPrecisionIsSmallerAndWorse) {
  const auto data = smooth_3d(16);
  ZfpCompressor p8({ZfpMode::kFixedPrecision, 8, 0.0});
  ZfpCompressor p24({ZfpMode::kFixedPrecision, 24, 0.0});
  const auto s8 = p8.compress(data, Dims::d3(16, 16, 16));
  const auto s24 = p24.compress(data, Dims::d3(16, 16, 16));
  EXPECT_LT(s8.size(), s24.size());

  const auto d8 = p8.decompress(s8);
  const auto d24 = p24.decompress(s24);
  double e8 = 0, e24 = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    e8 = std::max(e8, std::fabs(d8[i] - data[i]));
    e24 = std::max(e24, std::fabs(d24[i] - data[i]));
  }
  EXPECT_LT(e24, e8);
}

TEST(Zfp, FixedAccuracyModeRespectsTolerance) {
  const double tol = 1e-6;
  ZfpCompressor codec({ZfpMode::kFixedAccuracy, 0, tol});
  const auto data = smooth_3d(12);
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d3(12, 12, 12)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::fabs(decoded[i] - data[i]), tol) << "at " << i;
  }
}

TEST(Zfp, AllZeroBlocksAreOneFlagBit) {
  ZfpCompressor codec({ZfpMode::kFixedPrecision, 16, 0.0});
  std::vector<double> data(64 * 64, 0.0);
  const auto stream = codec.compress(data, Dims::d2(64, 64));
  // 256 blocks, 1 bit each + header: comfortably under 100 bytes.
  EXPECT_LT(stream.size(), 100u);
  const auto decoded = codec.decompress(stream);
  for (double v : decoded) EXPECT_EQ(v, 0.0);
}

TEST(Zfp, PartialBlocksRoundTrip) {
  ZfpCompressor codec({ZfpMode::kFixedPrecision, 62, 0.0});
  // 5x7x9: every dimension has a partial final block.
  std::vector<double> data(5 * 7 * 9);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 0.1 * static_cast<double>(i) - 3.0;
  }
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d3(5, 7, 9)));
  ASSERT_EQ(decoded.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(decoded[i], data[i], 1e-12);
  }
}

TEST(Zfp, MixedMagnitudeBlocks) {
  ZfpCompressor codec({ZfpMode::kFixedPrecision, 30, 0.0});
  std::vector<double> data(16 * 16);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = (i < 128) ? 1e-9 * static_cast<double>(i)
                        : 1e9 * static_cast<double>(i);
  }
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d2(16, 16)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double scale = std::max(1.0, std::fabs(data[i]));
    EXPECT_NEAR(decoded[i] / scale, data[i] / scale, 1e-6);
  }
}

TEST(Zfp, NegativeValues) {
  ZfpCompressor codec({ZfpMode::kFixedPrecision, 40, 0.0});
  std::vector<double> data(64);
  for (std::size_t i = 0; i < 64; ++i) {
    data[i] = -50.0 + static_cast<double>(i) * 1.7;
  }
  const auto decoded = codec.decompress(codec.compress(data, Dims::d1(64)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(decoded[i], data[i], 1e-8);
  }
}

TEST(Zfp, RejectsBadConstruction) {
  EXPECT_THROW(ZfpCompressor({ZfpMode::kFixedPrecision, 0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(ZfpCompressor({ZfpMode::kFixedPrecision, 63, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(ZfpCompressor({ZfpMode::kFixedAccuracy, 16, -1.0}),
               std::invalid_argument);
}

TEST(ZfpFixedRate, StreamSizeIsExactlyRate) {
  // 3D: 4^3 = 64 values per block; rate 16 -> 1024 bits = 128 B per block.
  ZfpCompressor codec({ZfpMode::kFixedRate, 0, 0.0, 16});
  const auto data = smooth_3d(16);  // 64 blocks
  const auto stream = codec.compress(data, Dims::d3(16, 16, 16));
  const std::size_t header = 4 + 1 + 1 + 2 + 8 + 24;  // see zfp_like.cpp
  EXPECT_EQ(stream.size(), header + 64 * 128);
}

TEST(ZfpFixedRate, RoundTripWithinExpectedError) {
  ZfpCompressor codec({ZfpMode::kFixedRate, 0, 0.0, 24});
  const auto data = smooth_3d(12);
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d3(12, 12, 12)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(decoded[i], data[i], 1e-3);
  }
}

TEST(ZfpFixedRate, HigherRateIsMoreAccurate) {
  const auto data = smooth_3d(8);
  double previous_error = 1e300;
  for (unsigned rate : {8, 16, 32, 48}) {
    ZfpCompressor codec({ZfpMode::kFixedRate, 0, 0.0, rate});
    const auto decoded =
        codec.decompress(codec.compress(data, Dims::d3(8, 8, 8)));
    double err = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      err = std::max(err, std::fabs(decoded[i] - data[i]));
    }
    EXPECT_LE(err, previous_error) << "rate " << rate;
    previous_error = err;
  }
}

TEST(ZfpFixedRate, ZeroBlocksStillConsumeBudget) {
  // Fixed rate trades ratio for random access: zeros cost rate too.
  ZfpCompressor codec({ZfpMode::kFixedRate, 0, 0.0, 8});
  std::vector<double> data(16 * 16, 0.0);
  const auto stream = codec.compress(data, Dims::d2(16, 16));
  // 16 blocks x 16 values x 8 bits = 256 B + header.
  EXPECT_GE(stream.size(), 256u);
  const auto decoded = codec.decompress(stream);
  for (double v : decoded) EXPECT_EQ(v, 0.0);
}

TEST(ZfpFixedRate, RejectsRateTooLowForRank) {
  // 1D blocks have 4 values: rate 2 -> 8 bits/block < 14-bit header.
  ZfpCompressor codec({ZfpMode::kFixedRate, 0, 0.0, 2});
  std::vector<double> data(16, 1.0);
  EXPECT_THROW(codec.compress(data, Dims::d1(16)), std::invalid_argument);
}

TEST(ZfpFixedRate, RejectsBadRate) {
  EXPECT_THROW(ZfpCompressor({ZfpMode::kFixedRate, 0, 0.0, 0}),
               std::invalid_argument);
  EXPECT_THROW(ZfpCompressor({ZfpMode::kFixedRate, 0, 0.0, 65}),
               std::invalid_argument);
}

class ZfpRateSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ZfpRateSweep, RoundTripAndExactSizeAtRate) {
  const unsigned rate = GetParam();
  ZfpCompressor codec({ZfpMode::kFixedRate, 0, 0.0, rate});
  const auto data = smooth_3d(8);  // 8 blocks of 64 values
  const auto stream = codec.compress(data, Dims::d3(8, 8, 8));
  // 8 blocks x 64 values x rate bits, always a whole number of bytes.
  const std::size_t header = 40;
  EXPECT_EQ(stream.size(), header + 64 * rate);
  const auto decoded = codec.decompress(stream);
  ASSERT_EQ(decoded.size(), data.size());
  // Coarse sanity: error below the block value range at any rate.
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(decoded[i], data[i], 2.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, ZfpRateSweep,
                         ::testing::Values(4, 8, 12, 16, 24, 32, 40, 64));

class ZfpPrecisionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ZfpPrecisionSweep, ErrorShrinksMonotonically) {
  const auto data = smooth_3d(8);
  ZfpCompressor codec({ZfpMode::kFixedPrecision, GetParam(), 0.0});
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d3(8, 8, 8)));
  double max_err = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    max_err = std::max(max_err, std::fabs(decoded[i] - data[i]));
  }
  // Each kept plane halves the worst-case quantization error; allow a
  // generous transform-amplification constant.
  const double budget = 64.0 * std::ldexp(4.0, -static_cast<int>(GetParam()));
  EXPECT_LE(max_err, budget);
}

INSTANTIATE_TEST_SUITE_P(Precisions, ZfpPrecisionSweep,
                         ::testing::Values(8, 12, 16, 20, 24, 32, 40));

}  // namespace
}  // namespace rmp::compress
