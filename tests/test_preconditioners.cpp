#include <gtest/gtest.h>

#include <cmath>

#include "compress/factory.hpp"
#include "core/identity.hpp"
#include "core/partitioned.hpp"
#include "core/pca.hpp"
#include "core/projection.hpp"
#include "core/reshape.hpp"
#include "core/svd_precond.hpp"
#include "core/wavelet_precond.hpp"
#include "sim/heat.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

sim::Field smooth_3d_field(std::size_t n) {
  sim::Field f(n, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        const double x = static_cast<double>(i) / static_cast<double>(n);
        const double y = static_cast<double>(j) / static_cast<double>(n);
        const double z = static_cast<double>(k) / static_cast<double>(n);
        f.at(i, j, k) = 10.0 * std::sin(3 * x) * std::cos(2 * y) +
                        z * z + 0.5 * x * y;
      }
    }
  }
  return f;
}

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_zfp_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_zfp_delta();
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

double round_trip_rmse(const Preconditioner& p, const sim::Field& f,
                       const CodecPair& codecs) {
  const auto container = p.encode(f, codecs, nullptr);
  const auto decoded = p.decode(container, codecs, nullptr);
  return stats::rmse(f.flat(), decoded.flat());
}

TEST(Reshape, CanonicalShapes) {
  EXPECT_EQ(matrix_shape(sim::Field(4, 5, 6)),
            (std::pair<std::size_t, std::size_t>{20, 6}));
  EXPECT_EQ(matrix_shape(sim::Field(4, 5, 1)),
            (std::pair<std::size_t, std::size_t>{4, 5}));
  EXPECT_EQ(matrix_shape(sim::Field(12, 1, 1)),
            (std::pair<std::size_t, std::size_t>{4, 3}));
}

TEST(Reshape, NearSquareFactors) {
  EXPECT_EQ(near_square_factors(16),
            (std::pair<std::size_t, std::size_t>{4, 4}));
  EXPECT_EQ(near_square_factors(12),
            (std::pair<std::size_t, std::size_t>{4, 3}));
  EXPECT_EQ(near_square_factors(13),
            (std::pair<std::size_t, std::size_t>{13, 1}));  // prime
}

TEST(Reshape, MatrixFieldRoundTrip) {
  const sim::Field f = smooth_3d_field(6);
  const la::Matrix m = as_matrix(f);
  const sim::Field back = matrix_to_field(m, 6, 6, 6);
  for (std::size_t n = 0; n < f.size(); ++n) {
    ASSERT_EQ(back.flat()[n], f.flat()[n]);
  }
}

TEST(Identity, RoundTripWithinCodecError) {
  Codecs codecs;
  IdentityPreconditioner p;
  const sim::Field f = smooth_3d_field(12);
  EXPECT_LT(round_trip_rmse(p, f, codecs.pair()), 1e-2);
}

TEST(OneBase, RoundTripWithinError) {
  Codecs codecs;
  OneBasePreconditioner p;
  const sim::Field f = smooth_3d_field(12);
  EXPECT_LT(round_trip_rmse(p, f, codecs.pair()), 5e-2);
}

TEST(OneBase, Rejects1dField) {
  Codecs codecs;
  OneBasePreconditioner p;
  const sim::Field f(64, 1, 1);
  EXPECT_THROW(p.encode(f, codecs.pair(), nullptr), std::invalid_argument);
}

TEST(OneBase, BeatsIdentityOnZSimilarData) {
  // The Heat3d story: z-symmetric data makes the delta highly
  // compressible, so one-base should beat direct compression.
  sim::HeatConfig config;
  config.n = 16;
  config.steps = 150;
  const sim::Field f = sim::heat3d_run(config);

  Codecs codecs;
  EncodeStats identity_stats, onebase_stats;
  IdentityPreconditioner().encode(f, codecs.pair(), &identity_stats);
  OneBasePreconditioner().encode(f, codecs.pair(), &onebase_stats);
  EXPECT_GT(onebase_stats.compression_ratio,
            identity_stats.compression_ratio);
}

TEST(MultiBase, RoundTripWithinError) {
  Codecs codecs;
  MultiBasePreconditioner p(4);
  const sim::Field f = smooth_3d_field(12);
  EXPECT_LT(round_trip_rmse(p, f, codecs.pair()), 5e-2);
}

TEST(MultiBase, StoresMorePlanesThanOneBase) {
  Codecs codecs;
  const sim::Field f = smooth_3d_field(16);
  EncodeStats one, multi;
  OneBasePreconditioner().encode(f, codecs.pair(), &one);
  MultiBasePreconditioner(4).encode(f, codecs.pair(), &multi);
  EXPECT_GT(multi.reduced_bytes, one.reduced_bytes);
}

TEST(MultiBase, RejectsZeroSlabs) {
  EXPECT_THROW(MultiBasePreconditioner(0), std::invalid_argument);
}

TEST(DuoModel, RoundTripStoredReduced) {
  Codecs codecs;
  DuoModelPreconditioner p(2, /*store_reduced=*/true);
  const sim::Field f = smooth_3d_field(12);
  // The 8-bit delta codec dominates the residual; 0.1 is ~1% of range.
  EXPECT_LT(round_trip_rmse(p, f, codecs.pair()), 0.1);
}

TEST(DuoModel, UnstoredReducedNeedsExternalField) {
  Codecs codecs;
  DuoModelPreconditioner p(2, /*store_reduced=*/false);
  const sim::Field f = smooth_3d_field(12);
  const auto container = p.encode(f, codecs.pair(), nullptr);
  EXPECT_THROW(p.decode(container, codecs.pair(), nullptr),
               std::invalid_argument);

  const sim::Field reduced = p.make_reduced(f);
  const auto decoded = p.decode(container, codecs.pair(), &reduced);
  EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 0.1);
}

TEST(DuoModel, RejectsWrongExternalShape) {
  Codecs codecs;
  DuoModelPreconditioner p(2, false);
  const sim::Field f = smooth_3d_field(12);
  const auto container = p.encode(f, codecs.pair(), nullptr);
  const sim::Field wrong(3, 3, 3);
  EXPECT_THROW(p.decode(container, codecs.pair(), &wrong),
               std::invalid_argument);
}

TEST(Pca, VarianceProportionsSumToOne) {
  const sim::Field f = smooth_3d_field(10);
  const auto proportions = pca_variance_proportions(f);
  double sum = 0;
  for (double p : proportions) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Descending order.
  for (std::size_t i = 1; i < proportions.size(); ++i) {
    EXPECT_GE(proportions[i - 1], proportions[i] - 1e-12);
  }
}

TEST(Pca, ComponentsForTarget) {
  EXPECT_EQ(components_for_target({0.9, 0.06, 0.04}, 0.95), 2u);
  EXPECT_EQ(components_for_target({0.5, 0.3, 0.2}, 0.95), 3u);
  EXPECT_EQ(components_for_target({1.0}, 0.95), 1u);
  EXPECT_EQ(components_for_target({}, 0.95), 0u);
}

TEST(Pca, RoundTripWithinError) {
  Codecs codecs;
  PcaPreconditioner p;
  const sim::Field f = smooth_3d_field(12);
  EXPECT_LT(round_trip_rmse(p, f, codecs.pair()), 0.5);
}

TEST(Pca, WorksOn1dAnd2dFields) {
  Codecs codecs;
  PcaPreconditioner p;
  sim::Field f1(64, 1, 1);
  for (std::size_t i = 0; i < 64; ++i) {
    f1.at(i) = std::sin(0.2 * static_cast<double>(i));
  }
  EXPECT_LT(round_trip_rmse(p, f1, codecs.pair()), 0.5);

  sim::Field f2(16, 16, 1);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      f2.at(i, j) = static_cast<double>(i) + 2.0 * static_cast<double>(j);
    }
  }
  EXPECT_LT(round_trip_rmse(p, f2, codecs.pair()), 0.5);
}

TEST(Pca, DeltaAgainstDecodedReducesRmse) {
  // Ablation: computing the delta against the decoded scores must not
  // increase the round-trip error (it cancels reduced-rep loss).
  Codecs codecs;
  const sim::Field f = smooth_3d_field(12);
  PcaPreconditioner clean({0.95, false});
  PcaPreconditioner decoded({0.95, true});
  EXPECT_LE(round_trip_rmse(decoded, f, codecs.pair()),
            round_trip_rmse(clean, f, codecs.pair()) * 1.5 + 1e-12);
}

TEST(Pca, LowRankDataNeedsFewComponents) {
  // Rank-2 data: 95% of variance in <= 2 components.
  sim::Field f(32, 32, 1);
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      f.at(i, j) = 3.0 * std::sin(0.3 * static_cast<double>(i)) +
                   2.0 * static_cast<double>(j) / 32.0;
    }
  }
  const auto proportions = pca_variance_proportions(f);
  EXPECT_LE(components_for_target(proportions, 0.95), 2u);
}

TEST(Svd, SingularProportionsSumToOne) {
  const sim::Field f = smooth_3d_field(10);
  const auto proportions = svd_singular_proportions(f);
  double sum = 0;
  for (double p : proportions) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Svd, RoundTripWithinError) {
  Codecs codecs;
  SvdPreconditioner p;
  const sim::Field f = smooth_3d_field(12);
  EXPECT_LT(round_trip_rmse(p, f, codecs.pair()), 0.5);
}

TEST(Svd, HandlesWideMatrix) {
  Codecs codecs;
  SvdPreconditioner p;
  // 2D field with nx < ny forces the transposed SVD path.
  sim::Field f(8, 24, 1);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 24; ++j) {
      f.at(i, j) = std::cos(0.2 * static_cast<double>(i + j));
    }
  }
  EXPECT_LT(round_trip_rmse(p, f, codecs.pair()), 0.5);
}

TEST(Wavelet, RoundTripWithinError) {
  Codecs codecs;
  WaveletPreconditioner p;
  const sim::Field f = smooth_3d_field(12);
  EXPECT_LT(round_trip_rmse(p, f, codecs.pair()), 0.5);
}

TEST(Wavelet, ThresholdZeroIsNearExactReducedModel) {
  Codecs codecs;
  WaveletPreconditioner p({0.0});
  const sim::Field f = smooth_3d_field(8);
  // theta = 0 keeps all coefficients: reconstruction error comes only
  // from the delta codec.
  EXPECT_LT(round_trip_rmse(p, f, codecs.pair()), 1e-2);
}

TEST(Wavelet, RejectsBadThreshold) {
  EXPECT_THROW(WaveletPreconditioner({-0.1}), std::invalid_argument);
  EXPECT_THROW(WaveletPreconditioner({1.0}), std::invalid_argument);
}

TEST(PartitionedPca, RoundTripWithinError) {
  Codecs codecs;
  PartitionedPcaPreconditioner p({4, 0.95});
  const sim::Field f = smooth_3d_field(12);
  EXPECT_LT(round_trip_rmse(p, f, codecs.pair()), 0.5);
}

TEST(PartitionedPca, SinglePartitionMatchesPcaClosely) {
  Codecs codecs;
  const sim::Field f = smooth_3d_field(10);
  const double whole = round_trip_rmse(PcaPreconditioner(), f, codecs.pair());
  const double part =
      round_trip_rmse(PartitionedPcaPreconditioner({1, 0.95}), f,
                      codecs.pair());
  EXPECT_NEAR(part, whole, std::max(whole, part) * 0.5 + 1e-9);
}

TEST(Registry, AllNamesConstructAndMatch) {
  for (const auto& name : preconditioner_names()) {
    const auto p = make_preconditioner(name);
    EXPECT_EQ(p->name(), name);
  }
  EXPECT_THROW(make_preconditioner("nonsense"), std::invalid_argument);
}

TEST(Stats, AccountingIsConsistent) {
  Codecs codecs;
  EncodeStats stats;
  const sim::Field f = smooth_3d_field(12);
  PcaPreconditioner().encode(f, codecs.pair(), &stats);
  EXPECT_EQ(stats.original_bytes, f.size() * sizeof(double));
  EXPECT_GT(stats.total_bytes, 0u);
  EXPECT_GE(stats.total_bytes, stats.reduced_bytes + stats.delta_bytes);
  EXPECT_NEAR(stats.compression_ratio,
              static_cast<double>(stats.original_bytes) /
                  static_cast<double>(stats.total_bytes),
              1e-9);
}

}  // namespace
}  // namespace rmp::core
