#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "compress/factory.hpp"
#include "core/model_select.hpp"
#include "core/pipeline.hpp"
#include "core/precond_error.hpp"
#include "sim/heat.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

sim::Field heat_field() {
  sim::HeatConfig config;
  config.n = 16;
  config.steps = 120;
  return sim::heat3d_run(config);
}

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_sz_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_sz_delta();
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

TEST(Pipeline, RunPipelineFillsAllFields) {
  Codecs codecs;
  const sim::Field f = heat_field();
  const auto result =
      run_pipeline(*make_preconditioner("one-base"), f, codecs.pair());
  EXPECT_EQ(result.method, "one-base");
  EXPECT_GT(result.stats.total_bytes, 0u);
  EXPECT_GT(result.stats.compression_ratio, 1.0);
  EXPECT_GE(result.encode_seconds, 0.0);
  EXPECT_GE(result.decode_seconds, 0.0);
  EXPECT_GE(result.max_error, result.rmse);
}

TEST(Pipeline, ReconstructDispatchesOnMethod) {
  Codecs codecs;
  const sim::Field f = heat_field();
  for (const std::string name : {"identity", "one-base", "pca", "wavelet"}) {
    const auto p = make_preconditioner(name);
    const auto container = p->encode(f, codecs.pair(), nullptr);
    const sim::Field decoded = reconstruct(container, codecs.pair());
    EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 1.0) << name;
  }
}

TEST(Pipeline, ContainerSurvivesFileRoundTrip) {
  Codecs codecs;
  const sim::Field f = heat_field();
  const auto p = make_preconditioner("pca");
  const auto container = p->encode(f, codecs.pair(), nullptr);

  const auto path =
      std::filesystem::temp_directory_path() / "rmp_pipeline_test.bin";
  io::write_container(path, container);
  const auto loaded = io::read_container(path);
  std::filesystem::remove(path);

  const sim::Field decoded = reconstruct(loaded, codecs.pair());
  EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 1.0);
}

TEST(ModelSelect, PicksSmallestContainer) {
  Codecs codecs;
  const sim::Field f = heat_field();
  const auto selection = select_best_model(f, codecs.pair());
  ASSERT_FALSE(selection.best.empty());
  for (const auto& result : selection.all) {
    EXPECT_GE(result.stats.total_bytes,
              selection.best_result.stats.total_bytes)
        << result.method;
  }
}

TEST(ModelSelect, SkipsProjectionFor1dData) {
  Codecs codecs;
  sim::Field f(256, 1, 1);
  for (std::size_t i = 0; i < 256; ++i) {
    f.at(i) = std::sin(0.1 * static_cast<double>(i));
  }
  const auto selection = select_best_model(f, codecs.pair());
  for (const auto& result : selection.all) {
    EXPECT_NE(result.method, "one-base");
    EXPECT_NE(result.method, "multi-base");
  }
}

TEST(ModelSelect, RmseBudgetFiltersCandidates) {
  Codecs codecs;
  const sim::Field f = heat_field();
  SelectionOptions options;
  options.rmse_budget = 1e9;  // everything qualifies
  const auto loose = select_best_model(f, codecs.pair(), options);
  EXPECT_FALSE(loose.best.empty());
  EXPECT_FALSE(loose.fell_back);

  // Nothing qualifies (lossy codecs): the selector degrades to the
  // identity baseline with the rejection reasons on record instead of
  // throwing for a data-shaped outcome.
  options.rmse_budget = 0.0;
  options.candidates = {"pca"};
  const auto strict = select_best_model(f, codecs.pair(), options);
  EXPECT_EQ(strict.best, "identity");
  EXPECT_TRUE(strict.fell_back);
  ASSERT_FALSE(strict.rejections.empty());
  EXPECT_NE(strict.rejections.front().find("pca"), std::string::npos);
}

TEST(ModelSelect, EmptyFieldIsATypedError) {
  Codecs codecs;
  const sim::Field empty(0, 0, 0);
  try {
    select_best_model(empty, codecs.pair());
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_EQ(e.code(), PrecondErrc::kDegenerateInput);
  }
}

TEST(ModelSelect, HonorsCandidateList) {
  Codecs codecs;
  const sim::Field f = heat_field();
  SelectionOptions options;
  options.candidates = {"identity", "wavelet"};
  const auto selection = select_best_model(f, codecs.pair(), options);
  EXPECT_EQ(selection.all.size(), 2u);
}

}  // namespace
}  // namespace rmp::core
