// Randomized-but-deterministic fault-injection sweep over every
// preconditioner: corrupted archives must repair (parity), salvage
// (reduced-model-only best effort) or fail with a typed ContainerError --
// never crash and never silently return wrong data.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>

#include "compress/factory.hpp"
#include "core/pipeline.hpp"
#include "fault_injection.hpp"
#include "io/checksum.hpp"
#include "io/container.hpp"
#include "io/sequence_file.hpp"
#include "obs/obs.hpp"

namespace rmp::core {
namespace {

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_zfp_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_zfp_delta();
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

sim::Field field3d() {
  sim::Field f(8, 8, 8);
  for (std::size_t n = 0; n < f.size(); ++n) {
    f.flat()[n] = std::sin(0.1 * static_cast<double>(n));
  }
  return f;
}

bool sections_equal(const io::Container& a, const io::Container& b) {
  if (a.method != b.method || a.sections.size() != b.sections.size()) {
    return false;
  }
  for (std::size_t s = 0; s < a.sections.size(); ++s) {
    if (a.sections[s].name != b.sections[s].name ||
        a.sections[s].bytes != b.sections[s].bytes) {
      return false;
    }
  }
  return true;
}

class FaultInjection : public ::testing::TestWithParam<std::string> {
 protected:
  Codecs codecs;
  io::Container encoded() {
    const auto preconditioner = make_preconditioner(GetParam());
    return preconditioner->encode(field3d(), codecs.pair(), nullptr);
  }
};

TEST_P(FaultInjection, CleanParityRoundTripReportsHealthy) {
  const auto container = encoded();
  const auto bytes = io::serialize(container, {.with_parity = true});
  io::ReadReport report;
  const auto decoded = io::deserialize(bytes, &report);
  EXPECT_TRUE(sections_equal(container, decoded));
  EXPECT_EQ(report.version, 3u);
  EXPECT_TRUE(report.parity_present);
  EXPECT_TRUE(report.parity_valid);
  EXPECT_TRUE(report.complete());
  EXPECT_FALSE(report.repaired());
}

TEST_P(FaultInjection, ParityRepairsEverySingleSectionLoss) {
  const auto container = encoded();
  const auto clean = io::serialize(container, {.with_parity = true});
  for (std::size_t s = 0; s < container.sections.size(); ++s) {
    if (container.sections[s].bytes.empty()) continue;
    auto bytes = clean;
    testing::corrupt_section(bytes, container, /*with_parity=*/true, s);
    io::ReadReport report;
    io::Container decoded;
    ASSERT_NO_THROW(decoded = io::deserialize(bytes, &report))
        << "section " << container.sections[s].name;
    EXPECT_TRUE(sections_equal(container, decoded))
        << "section " << container.sections[s].name;
    EXPECT_TRUE(report.repaired());
    ASSERT_LT(s, report.sections.size());
    EXPECT_EQ(report.sections[s].state, io::SectionState::kRepaired);
  }
}

TEST_P(FaultInjection, NoParityCorruptionThrowsTypedWithSectionName) {
  const auto container = encoded();
  const auto clean = io::serialize(container, {.with_parity = false});
  for (std::size_t s = 0; s < container.sections.size(); ++s) {
    if (container.sections[s].bytes.empty()) continue;
    auto bytes = clean;
    testing::corrupt_section(bytes, container, /*with_parity=*/false, s);
    try {
      io::deserialize(bytes);
      FAIL() << "corrupt section " << container.sections[s].name
             << " went undetected";
    } catch (const io::ContainerError& e) {
      EXPECT_EQ(e.code(), io::ContainerErrc::kSectionCorrupt);
      EXPECT_EQ(e.section(), container.sections[s].name);
    }
  }
}

TEST_P(FaultInjection, TruncationAlwaysThrowsTyped) {
  const auto container = encoded();
  const auto clean = io::serialize(container, {.with_parity = true});
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, clean.size() / 4,
        clean.size() / 2, clean.size() - 1}) {
    const auto bytes = testing::truncated(clean, keep);
    EXPECT_THROW((void)io::deserialize(bytes), io::ContainerError)
        << "kept " << keep << " of " << clean.size() << " bytes";
  }
}

TEST_P(FaultInjection, DoubleCorruptionWithParityIsRejectedNotMisrepaired) {
  const auto container = encoded();
  if (container.sections.size() < 2) {
    GTEST_SKIP() << "single-section archive";
  }
  auto bytes = io::serialize(container, {.with_parity = true});
  testing::corrupt_section(bytes, container, true, 0);
  testing::corrupt_section(bytes, container, true, 1);
  EXPECT_THROW((void)io::deserialize(bytes), io::ContainerError);
  // Salvage must still hand back the envelope with both sections flagged.
  io::ReadReport report;
  const auto salvaged = io::deserialize_salvage(bytes, &report);
  EXPECT_FALSE(report.complete());
  EXPECT_EQ(report.damaged().size(), 2u);
  EXPECT_EQ(salvaged.sections.size(), container.sections.size() - 2);
}

TEST_P(FaultInjection, RandomBitFlipsNeverYieldSilentlyWrongData) {
  const auto container = encoded();
  const auto baseline = reconstruct(container, codecs.pair());
  for (const bool with_parity : {false, true}) {
    const auto clean = io::serialize(container, {.with_parity = with_parity});
    std::mt19937_64 rng(0xF417C0DEu + with_parity);
    for (int trial = 0; trial < 40; ++trial) {
      auto bytes = clean;
      testing::flip_random_bit(bytes, rng);
      try {
        io::ReadReport report;
        const auto decoded = io::deserialize(bytes, &report);
        // Accepted reads must reproduce the archive exactly (either the
        // flip was repaired via parity or it never escaped detection
        // thanks to a CRC second preimage, which crc32 makes impossible
        // for single-bit flips).
        ASSERT_TRUE(sections_equal(container, decoded));
        const auto field = reconstruct(decoded, codecs.pair());
        for (std::size_t n = 0; n < field.size(); ++n) {
          ASSERT_EQ(field.flat()[n], baseline.flat()[n]);
        }
      } catch (const io::ContainerError&) {
        // Typed rejection is the other acceptable outcome.
      }
    }
  }
}

TEST_P(FaultInjection, DeltaLossSalvagesToReducedModelApproximation) {
  const auto container = encoded();
  std::size_t delta_index = container.sections.size();
  for (std::size_t s = 0; s < container.sections.size(); ++s) {
    if (container.sections[s].name == "delta") delta_index = s;
  }
  if (delta_index == container.sections.size()) {
    GTEST_SKIP() << GetParam() << " stores no delta section";
  }

  auto bytes = io::serialize(container, {.with_parity = false});
  testing::corrupt_section(bytes, container, false, delta_index);

  io::ReadReport report;
  const auto salvaged = io::deserialize_salvage(bytes, &report);
  ASSERT_FALSE(report.complete());
  const auto result =
      reconstruct_best_effort(salvaged, report, codecs.pair());
  EXPECT_FALSE(result.exact);
  EXPECT_TRUE(result.approximate);
  ASSERT_EQ(result.damaged_sections.size(), 1u);
  EXPECT_EQ(result.damaged_sections[0], "delta");
  EXPECT_EQ(result.field.nx(), 8u);
  EXPECT_EQ(result.field.ny(), 8u);
  EXPECT_EQ(result.field.nz(), 8u);
  for (const double v : result.field.flat()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_P(FaultInjection, NonDeltaLossIsRejectedNotFabricated) {
  const auto container = encoded();
  const auto baseline = reconstruct(container, codecs.pair());
  auto bytes = io::serialize(container, {.with_parity = false});
  for (std::size_t s = 0; s < container.sections.size(); ++s) {
    if (container.sections[s].name == "delta" ||
        container.sections[s].bytes.empty()) {
      continue;
    }
    auto corrupt = bytes;
    testing::corrupt_section(corrupt, container, false, s);
    io::ReadReport report;
    const auto salvaged = io::deserialize_salvage(corrupt, &report);
    try {
      const auto result =
          reconstruct_best_effort(salvaged, report, codecs.pair());
      // Some decoders tolerate advisory-section loss (e.g. wavelet meta);
      // accepting is fine only when the output is not a silent lie about
      // exactness.
      EXPECT_FALSE(result.exact)
          << "lost " << container.sections[s].name << " claimed exact";
    } catch (const io::ContainerError&) {
      // Typed rejection is the expected path.
    }
  }
  (void)baseline;
}

INSTANTIATE_TEST_SUITE_P(AllPreconditioners, FaultInjection,
                         ::testing::ValuesIn(preconditioner_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Backward compatibility: v2 archives (whole-file CRC trailer) written by
// older builds must still read back unchanged.  The writer below replays
// the legacy layout byte for byte.

void v2_append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

void v2_append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

void v2_append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  v2_append_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::vector<std::uint8_t> serialize_v2(const io::Container& container) {
  std::vector<std::uint8_t> out;
  v2_append_u32(out, 0x50434D52u);  // "RMCP"
  v2_append_u32(out, 2u);
  v2_append_string(out, container.method);
  v2_append_u64(out, container.nx);
  v2_append_u64(out, container.ny);
  v2_append_u64(out, container.nz);
  v2_append_u32(out, static_cast<std::uint32_t>(container.sections.size()));
  for (const auto& section : container.sections) {
    v2_append_string(out, section.name);
    v2_append_u64(out, section.bytes.size());
    out.insert(out.end(), section.bytes.begin(), section.bytes.end());
  }
  v2_append_u32(out, io::crc32(out));
  return out;
}

TEST(FaultInjectionV2Compat, LegacyArchivesStillRoundTrip) {
  Codecs codecs;
  for (const auto& method : preconditioner_names()) {
    const auto preconditioner = make_preconditioner(method);
    const auto container =
        preconditioner->encode(field3d(), codecs.pair(), nullptr);
    const auto v2_bytes = serialize_v2(container);

    io::ReadReport report;
    const auto decoded = io::deserialize(v2_bytes, &report);
    EXPECT_TRUE(sections_equal(container, decoded)) << method;
    EXPECT_EQ(decoded.nx, container.nx);
    EXPECT_EQ(decoded.ny, container.ny);
    EXPECT_EQ(decoded.nz, container.nz);
    EXPECT_EQ(report.version, 2u);
    EXPECT_FALSE(report.parity_present);
    EXPECT_TRUE(report.complete());

    const auto baseline = reconstruct(container, codecs.pair());
    const auto roundtrip = reconstruct(decoded, codecs.pair());
    for (std::size_t n = 0; n < baseline.size(); ++n) {
      ASSERT_EQ(baseline.flat()[n], roundtrip.flat()[n]) << method;
    }
  }
}

// ---------------------------------------------------------------------------
// Syscall-level faults through the io::FileOps seam: durable writes must
// either complete byte-identically (transient faults, short writes) or
// fail with a typed error carrying the OS text, leaving no torn
// destination and no stray staging file (DESIGN.md §10).

namespace fs = std::filesystem;

class VfsFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rmp_vfs_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    obs::set_enabled(true);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static io::Container sample(int i) {
    io::Container c;
    c.method = "vfs_step" + std::to_string(i);
    c.nx = static_cast<std::uint64_t>(i + 1);
    c.add("data", std::vector<std::uint8_t>(static_cast<std::size_t>(16 + i),
                                            static_cast<std::uint8_t>(i)));
    return c;
  }

  static std::vector<char> slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    std::vector<char> bytes(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return bytes;
  }

  std::size_t stray_tmp_count() const {
    std::size_t strays = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().filename().string().find(".tmp.") !=
          std::string::npos) {
        ++strays;
      }
    }
    return strays;
  }

  fs::path dir_;
};

TEST_F(VfsFaultTest, WriteContainerEnospcFailsTypedAndCleansUp) {
  const auto dest = dir_ / "out.rmp";
  try {
    // Op 1 opens the staging temp; op 2 is the first payload write.
    testing::ScopedFaultInjection inject({io::FaultKind::kEnospc, 2});
    io::write_container(dest, sample(0));
    FAIL() << "full-disk write reported success";
  } catch (const io::ContainerError& e) {
    EXPECT_EQ(e.code(), io::ContainerErrc::kIoError);
    const std::string what = e.what();
    EXPECT_NE(what.find("write_container"), std::string::npos) << what;
    EXPECT_NE(what.find("No space left"), std::string::npos) << what;
  }
  EXPECT_FALSE(fs::exists(dest));
  EXPECT_EQ(stray_tmp_count(), 0u);
}

TEST_F(VfsFaultTest, WriteContainerRetriesTransientEintr) {
  const auto clean_dest = dir_ / "clean.rmp";
  const auto dest = dir_ / "out.rmp";
  io::write_container(clean_dest, sample(1));

  const auto before = obs::Registry::global().counter_value("io.retry.attempts");
  {
    testing::ScopedFaultInjection inject({io::FaultKind::kEintr, 2, 3});
    io::write_container(dest, sample(1));
    EXPECT_EQ(inject.faults_injected(), 3u);
  }
  EXPECT_EQ(obs::Registry::global().counter_value("io.retry.attempts"),
            before + 3);
  EXPECT_EQ(slurp(dest), slurp(clean_dest));
  EXPECT_EQ(stray_tmp_count(), 0u);
}

TEST_F(VfsFaultTest, WriteContainerSurvivesShortWrites) {
  const auto clean_dest = dir_ / "clean.rmp";
  const auto dest = dir_ / "out.rmp";
  io::write_container(clean_dest, sample(2));

  const auto before =
      obs::Registry::global().counter_value("io.retry.short_writes");
  {
    testing::ScopedFaultInjection inject({io::FaultKind::kShort, 2, 4});
    io::write_container(dest, sample(2));
    EXPECT_GE(inject.faults_injected(), 1u);
  }
  EXPECT_GT(obs::Registry::global().counter_value("io.retry.short_writes"),
            before);
  EXPECT_EQ(slurp(dest), slurp(clean_dest));
  EXPECT_EQ(stray_tmp_count(), 0u);
}

TEST_F(VfsFaultTest, ExhaustedTransientRetriesBecomeTyped) {
  const auto dest = dir_ / "out.rmp";
  const auto before =
      obs::Registry::global().counter_value("io.retry.exhausted");
  try {
    // More consecutive EINTRs than the policy's attempt budget.
    testing::ScopedFaultInjection inject({io::FaultKind::kEintr, 2, 64});
    io::write_container(dest, sample(3));
    FAIL() << "endless EINTR stream reported success";
  } catch (const io::ContainerError& e) {
    EXPECT_EQ(e.code(), io::ContainerErrc::kIoError);
  }
  EXPECT_GT(obs::Registry::global().counter_value("io.retry.exhausted"),
            before);
  EXPECT_FALSE(fs::exists(dest));
  EXPECT_EQ(stray_tmp_count(), 0u);
}

TEST_F(VfsFaultTest, SequenceAppendEnospcKeepsCommittedPrefix) {
  const auto dest = dir_ / "seq.rmps";
  {
    io::SequenceWriter writer(dest);
    writer.append(sample(0));
    try {
      // Every faultable op fails while installed: the append must surface
      // a typed error without damaging the committed first step.
      testing::ScopedFaultInjection inject({io::FaultKind::kEnospc, 1, 1u << 20});
      writer.append(sample(1));
      FAIL() << "append on a full disk reported success";
    } catch (const io::ContainerError& e) {
      EXPECT_EQ(e.code(), io::ContainerErrc::kIoError);
      EXPECT_NE(std::string(e.what()).find("No space left"), std::string::npos);
    }
    // The writer is poisoned: later appends point the caller at resume.
    EXPECT_THROW(writer.append(sample(1)), io::ContainerError);
  }
  auto writer = io::SequenceWriter::resume(dest);
  ASSERT_EQ(writer.steps_written(), 1u);
  writer.append(sample(1));
  writer.finish();

  io::SequenceReader reader(dest);
  ASSERT_EQ(reader.step_count(), 2u);
  EXPECT_EQ(reader.read_step(0).method, "vfs_step0");
  EXPECT_EQ(reader.read_step(1).method, "vfs_step1");
}

TEST_F(VfsFaultTest, AlreadyExpiredDeadlineRefusesToStartWriting) {
  const auto dest = dir_ / "late.rmp";
  io::SerializeOptions options;
  options.retry.deadline = std::chrono::steady_clock::now() -
                           std::chrono::milliseconds(1);
  const auto before =
      obs::Registry::global().counter_value("io.retry.deadline_exceeded");
  try {
    io::write_container(dest, sample(4), options);
    FAIL() << "expired deadline still wrote";
  } catch (const io::ContainerError& e) {
    EXPECT_EQ(e.code(), io::ContainerErrc::kDeadlineExceeded);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
  EXPECT_GT(
      obs::Registry::global().counter_value("io.retry.deadline_exceeded"),
      before);
  EXPECT_FALSE(fs::exists(dest));
  EXPECT_EQ(stray_tmp_count(), 0u);
}

TEST_F(VfsFaultTest, DeadlineCapsTransientRetryLoops) {
  // A generous attempt budget but a tiny wall-clock budget: the endless
  // EINTR stream must be abandoned as kDeadlineExceeded (the deadline
  // caps how *long*), not retried to attempt exhaustion.
  const auto dest = dir_ / "capped.rmp";
  io::SerializeOptions options;
  options.retry.max_attempts = 1'000'000;
  options.retry.base_delay = std::chrono::microseconds(200);
  options.retry.deadline = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(50);
  try {
    testing::ScopedFaultInjection inject({io::FaultKind::kEintr, 1, 1u << 20});
    io::write_container(dest, sample(5), options);
    FAIL() << "deadline never fired";
  } catch (const io::ContainerError& e) {
    EXPECT_EQ(e.code(), io::ContainerErrc::kDeadlineExceeded) << e.what();
  }
  EXPECT_FALSE(fs::exists(dest));
  EXPECT_EQ(stray_tmp_count(), 0u);
}

TEST_F(VfsFaultTest, SequenceWriterHonorsThreadedDeadline) {
  // set_retry is how rmpd threads a per-request deadline into a
  // long-lived journal writer; clearing it afterwards must restore the
  // writer to normal service for the next request.
  const auto dest = dir_ / "deadline.rmps";
  io::SequenceWriter writer(dest);
  writer.append(sample(0));

  io::RetryPolicy expired;
  expired.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);
  writer.set_retry(expired);
  try {
    writer.append(sample(1));
    FAIL() << "append past the deadline succeeded";
  } catch (const io::ContainerError& e) {
    EXPECT_EQ(e.code(), io::ContainerErrc::kDeadlineExceeded) << e.what();
  }

  // A pre-write deadline expiry must NOT poison the writer: nothing was
  // torn, so clearing the deadline restores normal service.
  writer.set_retry(io::RetryPolicy{});
  writer.append(sample(1));
  writer.finish();
  io::SequenceReader reader(dest);
  EXPECT_EQ(reader.step_count(), 2u);
}

TEST(VfsFaultSpec, ParsesTheDocumentedGrammar) {
  const auto enospc = io::FaultSpec::parse("enospc@3");
  ASSERT_TRUE(enospc.has_value());
  EXPECT_EQ(enospc->kind, io::FaultKind::kEnospc);
  EXPECT_EQ(enospc->at, 3u);
  EXPECT_EQ(enospc->repeat, 1u);

  const auto eintr = io::FaultSpec::parse("eintr@2x5");
  ASSERT_TRUE(eintr.has_value());
  EXPECT_EQ(eintr->kind, io::FaultKind::kEintr);
  EXPECT_EQ(eintr->at, 2u);
  EXPECT_EQ(eintr->repeat, 5u);

  EXPECT_FALSE(io::FaultSpec::parse("").has_value());
  EXPECT_FALSE(io::FaultSpec::parse("enospc").has_value());
  EXPECT_FALSE(io::FaultSpec::parse("enospc@0").has_value());
  EXPECT_FALSE(io::FaultSpec::parse("enospc@x").has_value());
  EXPECT_FALSE(io::FaultSpec::parse("lightning@3").has_value());
  EXPECT_FALSE(io::FaultSpec::parse("eintr@2x0").has_value());
}

TEST(FaultInjectionV2Compat, FlippedV2ByteStillDetected) {
  Codecs codecs;
  const auto preconditioner = make_preconditioner("pca");
  const auto container =
      preconditioner->encode(field3d(), codecs.pair(), nullptr);
  auto bytes = serialize_v2(container);
  bytes[bytes.size() / 2] ^= 0x10u;
  try {
    io::deserialize(bytes);
    FAIL() << "corrupt v2 archive went undetected";
  } catch (const io::ContainerError& e) {
    EXPECT_EQ(e.code(), io::ContainerErrc::kChecksumMismatch);
  }
}

}  // namespace
}  // namespace rmp::core
