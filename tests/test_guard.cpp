// Guard-layer tests: audit census, bit-exact nanmask round trips,
// provenance serialization, and the demote-and-retry chain on real
// (Sedov) data speckled with NaN/Inf.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "compress/factory.hpp"
#include "core/guard.hpp"
#include "core/pca.hpp"
#include "core/pipeline.hpp"
#include "io/container_error.hpp"
#include "sim/sedov.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_sz_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_sz_delta();
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

sim::Field sedov_field() {
  sim::SedovConfig config;
  config.n = 24;
  return sim::sedov_pressure_field(config);
}

/// A NaN with a distinctive payload, to prove restoration is bit-exact
/// and not just "some NaN".
double payload_nan() {
  std::uint64_t bits = 0x7ff8dead'beef1234ull;
  double value;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

std::uint64_t bits_of(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

TEST(GuardAudit, CountsEveryCategory) {
  sim::Field f(4, 4, 4, 1.0);
  f.flat()[0] = kNan;
  f.flat()[1] = kInf;
  f.flat()[2] = -kInf;
  f.flat()[3] = std::numeric_limits<double>::denorm_min();
  f.flat()[4] = 3.0;

  const DataAudit audit = audit_field(f);
  EXPECT_EQ(audit.total, 64u);
  EXPECT_EQ(audit.nans, 1u);
  EXPECT_EQ(audit.pos_infs, 1u);
  EXPECT_EQ(audit.neg_infs, 1u);
  EXPECT_EQ(audit.denormals, 1u);
  EXPECT_EQ(audit.finite, 61u);
  EXPECT_EQ(audit.nonfinite(), 3u);
  EXPECT_FALSE(audit.all_nonfinite());
  EXPECT_FALSE(audit.constant_field);
  EXPECT_FALSE(audit.degenerate_shape);
  EXPECT_DOUBLE_EQ(audit.finite_max, 3.0);
  EXPECT_DOUBLE_EQ(audit.finite_min,
                   std::numeric_limits<double>::denorm_min());
}

TEST(GuardAudit, FlagsConstantAndDegenerate) {
  const sim::Field constant(8, 8, 1, 42.0);
  const DataAudit c = audit_field(constant);
  EXPECT_TRUE(c.constant_field);
  EXPECT_FALSE(c.degenerate_shape);

  const sim::Field single(1, 1, 1, 7.0);
  EXPECT_TRUE(audit_field(single).degenerate_shape);

  sim::Field all_nan(2, 2, 1, kNan);
  EXPECT_TRUE(audit_field(all_nan).all_nonfinite());
}

TEST(GuardMask, ExtractFillRestoreIsBitExact) {
  sim::Field f(4, 4, 4);
  for (std::size_t n = 0; n < f.size(); ++n) {
    f.flat()[n] = 0.25 * static_cast<double>(n);
  }
  const double special = payload_nan();
  f.flat()[10] = special;
  f.flat()[20] = kInf;
  f.flat()[30] = -kInf;

  sim::Field filled = f;
  const NanMask mask = extract_nonfinite(filled);
  ASSERT_EQ(mask.size(), 3u);
  for (std::size_t n = 0; n < filled.size(); ++n) {
    EXPECT_TRUE(std::isfinite(filled.flat()[n])) << "cell " << n;
  }

  apply_nanmask(filled, mask);
  for (std::size_t n = 0; n < f.size(); ++n) {
    EXPECT_EQ(bits_of(filled.flat()[n]), bits_of(f.flat()[n])) << "cell " << n;
  }
}

TEST(GuardMask, FillUsesFiniteNeighborMean) {
  sim::Field f(3, 1, 1);
  f.flat()[0] = 2.0;
  f.flat()[1] = kNan;
  f.flat()[2] = 4.0;
  extract_nonfinite(f);
  EXPECT_DOUBLE_EQ(f.flat()[1], 3.0);  // mean of the two axis neighbors
}

TEST(GuardMask, BytesRoundTrip) {
  NanMask mask;
  mask.indices = {3, 17, 4095};
  mask.bits = {bits_of(payload_nan()), bits_of(kInf), bits_of(-kInf)};

  const auto bytes = nanmask_to_bytes(mask);
  const NanMask back = nanmask_from_bytes(bytes);
  EXPECT_EQ(back.indices, mask.indices);
  EXPECT_EQ(back.bits, mask.bits);
}

TEST(GuardMask, MalformedBytesAreTypedErrors) {
  const std::vector<std::uint8_t> garbage = {1, 2, 3, 4, 5};
  EXPECT_THROW(nanmask_from_bytes(garbage), io::ContainerError);
}

TEST(GuardMask, ApplyValidatesIndexRange) {
  sim::Field f(2, 2, 1);
  NanMask mask;
  mask.indices = {99};  // out of range for 4 cells
  mask.bits = {bits_of(kNan)};
  EXPECT_THROW(apply_nanmask(f, mask), io::ContainerError);
}

TEST(GuardProvenanceCodec, RoundTripsAllFields) {
  GuardProvenance prov;
  prov.requested = "pca";
  prov.actual = "raw";
  prov.demotions = {{"pca", "eigen-non-convergence: injected"},
                    {"identity", "bound verification failed"}};
  prov.masked_cells = 12;
  prov.bound_checked = true;
  prov.bound = 1e-6;
  prov.bound_satisfied = true;
  prov.verified_max_error = 0.0;

  const auto bytes = provenance_to_bytes(prov);
  const GuardProvenance back = provenance_from_bytes(bytes);
  EXPECT_EQ(back.requested, "pca");
  EXPECT_EQ(back.actual, "raw");
  ASSERT_EQ(back.demotions.size(), 2u);
  EXPECT_EQ(back.demotions[0].from, "pca");
  EXPECT_EQ(back.demotions[0].reason, "eigen-non-convergence: injected");
  EXPECT_EQ(back.masked_cells, 12u);
  EXPECT_TRUE(back.bound_checked);
  EXPECT_DOUBLE_EQ(back.bound, 1e-6);
  EXPECT_TRUE(back.bound_satisfied);
  EXPECT_DOUBLE_EQ(back.verified_max_error, 0.0);
}

TEST(GuardedEncode, CleanFieldKeepsRequestedModel) {
  Codecs codecs;
  const sim::Field f = sedov_field();
  GuardOptions options;
  options.method = "pca";
  const auto result = guarded_encode(f, codecs.pair(), options);
  EXPECT_EQ(result.provenance.requested, "pca");
  EXPECT_EQ(result.provenance.actual, "pca");
  EXPECT_TRUE(result.provenance.demotions.empty());
  EXPECT_EQ(result.provenance.masked_cells, 0u);
  EXPECT_EQ(result.container.find(kNanMaskSection), nullptr);
  ASSERT_NE(result.container.find(kGuardSection), nullptr);
}

// The ISSUE acceptance test: a NaN/Inf-speckled Sedov field round-trips
// under --guard with the bound satisfied on finite cells and the
// nonfinite cells restored bit-exactly through the stock reconstruct().
TEST(GuardedEncode, SpeckledSedovSatisfiesBoundAndRestoresBitExact) {
  Codecs codecs;
  sim::Field f = sedov_field();
  f.flat()[101] = payload_nan();
  f.flat()[999] = kInf;
  f.flat()[5000] = -kInf;

  GuardOptions options;
  options.method = "pca";
  options.error_bound = 1e-2;
  const auto result = guarded_encode(f, codecs.pair(), options);

  EXPECT_TRUE(result.provenance.bound_checked);
  EXPECT_TRUE(result.provenance.bound_satisfied);
  EXPECT_LE(result.provenance.verified_max_error, 1e-2);
  EXPECT_EQ(result.provenance.masked_cells, 3u);

  const sim::Field decoded = reconstruct(result.container, codecs.pair());
  ASSERT_EQ(decoded.size(), f.size());
  for (std::size_t n = 0; n < f.size(); ++n) {
    if (std::isfinite(f.flat()[n])) {
      ASSERT_TRUE(std::isfinite(decoded.flat()[n])) << "cell " << n;
      EXPECT_LE(std::abs(f.flat()[n] - decoded.flat()[n]), 1e-2) << "cell " << n;
    } else {
      EXPECT_EQ(bits_of(decoded.flat()[n]), bits_of(f.flat()[n])) << "cell " << n;
    }
  }
}

TEST(GuardedEncode, EigenNonConvergenceDemotesToIdentity) {
  Codecs codecs;
  const sim::Field f = sedov_field();
  GuardOptions options;
  options.method = "pca";
  // Inject non-convergence at the library level: a zero sweep budget can
  // never drive the off-diagonal mass below tolerance.
  options.factory = [](const std::string& name)
      -> std::unique_ptr<Preconditioner> {
    if (name == "pca") {
      PcaOptions pca;
      pca.jacobi.max_sweeps = 0;
      return std::make_unique<PcaPreconditioner>(pca);
    }
    return make_preconditioner(name);
  };

  const auto result = guarded_encode(f, codecs.pair(), options);
  EXPECT_EQ(result.provenance.requested, "pca");
  EXPECT_EQ(result.provenance.actual, "identity");
  ASSERT_EQ(result.provenance.demotions.size(), 1u);
  EXPECT_EQ(result.provenance.demotions[0].from, "pca");
  EXPECT_NE(result.provenance.demotions[0].reason.find("eigen"),
            std::string::npos);

  // The demotion is recorded in the container itself.
  const auto prov = read_provenance(result.container);
  ASSERT_TRUE(prov.has_value());
  EXPECT_EQ(prov->actual, "identity");
}

TEST(GuardedEncode, ZeroBoundDemotesToLosslessRaw) {
  Codecs codecs;
  const sim::Field f = sedov_field();
  GuardOptions options;
  options.method = "pca";
  options.error_bound = 0.0;  // only a lossless terminal can satisfy this
  const auto result = guarded_encode(f, codecs.pair(), options);
  EXPECT_EQ(result.provenance.actual, "raw");
  EXPECT_TRUE(result.provenance.bound_satisfied);
  EXPECT_EQ(result.provenance.verified_max_error, 0.0);
  EXPECT_GE(result.provenance.demotions.size(), 2u);  // pca and identity fell

  const sim::Field decoded = reconstruct(result.container, codecs.pair());
  for (std::size_t n = 0; n < f.size(); ++n) {
    EXPECT_EQ(bits_of(decoded.flat()[n]), bits_of(f.flat()[n])) << "cell " << n;
  }
}

TEST(GuardedEncode, EmptyFieldIsATypedError) {
  Codecs codecs;
  const sim::Field empty(0, 0, 0);
  try {
    guarded_encode(empty, codecs.pair());
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_EQ(e.code(), PrecondErrc::kDegenerateInput);
  }
}

TEST(GuardedEncode, UnknownMethodIsACallerBug) {
  Codecs codecs;
  const sim::Field f(4, 4, 1, 1.0);
  GuardOptions options;
  options.method = "no-such-model";
  EXPECT_THROW(guarded_encode(f, codecs.pair(), options),
               std::invalid_argument);
}

TEST(GuardedEncode, PreGuardArchivesDecodeUnchanged) {
  // A container produced without the guard has no nanmask/guard sections;
  // reconstruct() must treat it exactly as before.
  Codecs codecs;
  const sim::Field f = sedov_field();
  const auto p = make_preconditioner("pca");
  const auto container = p->encode(f, codecs.pair(), nullptr);
  EXPECT_EQ(container.find(kNanMaskSection), nullptr);
  EXPECT_EQ(container.find(kGuardSection), nullptr);
  const sim::Field decoded = reconstruct(container, codecs.pair());
  EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 1.0);
  EXPECT_FALSE(read_provenance(container).has_value());
}

}  // namespace
}  // namespace rmp::core
