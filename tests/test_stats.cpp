#include "stats/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace rmp::stats {
namespace {

TEST(ByteMetrics, EntropyOfConstantBytesIsZero) {
  std::vector<std::uint8_t> bytes(1000, 0x42);
  EXPECT_DOUBLE_EQ(byte_entropy(std::span<const std::uint8_t>(bytes)), 0.0);
}

TEST(ByteMetrics, EntropyOfUniformBytesIsEight) {
  std::vector<std::uint8_t> bytes;
  for (int r = 0; r < 4; ++r) {
    for (int b = 0; b < 256; ++b) bytes.push_back(static_cast<std::uint8_t>(b));
  }
  EXPECT_NEAR(byte_entropy(std::span<const std::uint8_t>(bytes)), 8.0, 1e-12);
}

TEST(ByteMetrics, EntropyOfTwoSymbols) {
  std::vector<std::uint8_t> bytes(100, 0);
  for (int i = 0; i < 50; ++i) bytes[i] = 1;
  EXPECT_NEAR(byte_entropy(std::span<const std::uint8_t>(bytes)), 1.0, 1e-12);
}

TEST(ByteMetrics, MeanOfUniformBytes) {
  std::vector<std::uint8_t> bytes;
  for (int b = 0; b < 256; ++b) bytes.push_back(static_cast<std::uint8_t>(b));
  EXPECT_NEAR(byte_mean(std::span<const std::uint8_t>(bytes)), 127.5, 1e-12);
}

TEST(ByteMetrics, SerialCorrelationOfAlternating) {
  // 0,255,0,255,... is maximally anti-correlated.
  std::vector<std::uint8_t> bytes(1000);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = (i % 2 == 0) ? 0 : 255;
  }
  EXPECT_NEAR(serial_correlation(std::span<const std::uint8_t>(bytes)), -1.0,
              1e-9);
}

TEST(ByteMetrics, SerialCorrelationOfRamp) {
  // A slow ramp is highly positively correlated.
  std::vector<std::uint8_t> bytes(4096);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(i / 16);
  }
  EXPECT_GT(serial_correlation(std::span<const std::uint8_t>(bytes)), 0.9);
}

TEST(ByteMetrics, RandomBytesNearIdealValues) {
  std::mt19937 rng(17);
  std::vector<std::uint8_t> bytes(200000);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
  EXPECT_GT(byte_entropy(std::span<const std::uint8_t>(bytes)), 7.99);
  EXPECT_NEAR(byte_mean(std::span<const std::uint8_t>(bytes)), 127.5, 1.0);
  EXPECT_NEAR(serial_correlation(std::span<const std::uint8_t>(bytes)), 0.0,
              0.02);
}

TEST(ErrorMetrics, RmseKnownValues) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(a, b), 0.0);
  b[2] = 6.0;
  EXPECT_NEAR(rmse(a, b), std::sqrt(9.0 / 3.0), 1e-14);
}

TEST(ErrorMetrics, RmseRejectsSizeMismatch) {
  std::vector<double> a = {1.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(rmse(a, b), std::invalid_argument);
}

TEST(ErrorMetrics, MaxAbsError) {
  std::vector<double> a = {0.0, 5.0, -2.0};
  std::vector<double> b = {0.5, 5.0, -4.0};
  EXPECT_DOUBLE_EQ(max_abs_error(a, b), 2.0);
}

TEST(ErrorMetrics, PsnrInfiniteForIdentical) {
  std::vector<double> a = {1.0, 2.0};
  EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(ErrorMetrics, NrmseNormalizesByRange) {
  std::vector<double> a = {0.0, 10.0};
  std::vector<double> b = {1.0, 10.0};
  EXPECT_NEAR(nrmse(a, b), std::sqrt(0.5) / 10.0, 1e-14);
}

TEST(Cdf, MonotoneAndEndsAtOne) {
  std::mt19937 rng(23);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> values(5000);
  for (double& v : values) v = dist(rng);
  const auto cdf = empirical_cdf(values, 32);
  ASSERT_EQ(cdf.size(), 32u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].probability, cdf[i - 1].probability);
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
  }
  EXPECT_DOUBLE_EQ(cdf.back().probability, 1.0);
}

TEST(Cdf, EmptyInput) {
  EXPECT_TRUE(empirical_cdf({}, 16).empty());
}

TEST(Ks, IdenticalSamplesHaveZeroDistance) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_distance(a, a), 0.0);
}

TEST(Ks, DisjointSamplesHaveDistanceOne) {
  std::vector<double> a = {1.0, 2.0};
  std::vector<double> b = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
}

TEST(Ks, SimilarDistributionsHaveSmallDistance) {
  std::mt19937 rng(29);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> a(4000), b(4000);
  for (double& v : a) v = dist(rng);
  for (double& v : b) v = dist(rng);
  EXPECT_LT(ks_distance(a, b), 0.06);
}

TEST(Gradient, ZeroForIdentical) {
  std::vector<double> a = {1.0, 3.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(gradient_rmse(a, a), 0.0);
}

TEST(Gradient, DetectsSlopeChange) {
  std::vector<double> a = {0.0, 1.0, 2.0, 3.0};  // slope 1
  std::vector<double> b = {0.0, 2.0, 4.0, 6.0};  // slope 2
  EXPECT_NEAR(gradient_rmse(a, b), 1.0, 1e-12);
}

TEST(Gradient, InsensitiveToConstantOffset) {
  std::vector<double> a = {1.0, 2.0, 4.0, 8.0};
  std::vector<double> b = {11.0, 12.0, 14.0, 18.0};
  EXPECT_DOUBLE_EQ(gradient_rmse(a, b), 0.0);
}

TEST(Gradient, DegenerateInputs) {
  std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(gradient_rmse(one, one), 0.0);
  std::vector<double> a = {1.0, 2.0};
  std::vector<double> b = {1.0};
  EXPECT_THROW(gradient_rmse(a, b), std::invalid_argument);
}

TEST(Quantile, KnownValues) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);  // interpolated median
}

TEST(Quantile, SingleElement) {
  std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 7.0);
}

TEST(Quantile, RejectsBadInput) {
  std::vector<double> v = {1.0};
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.1), std::invalid_argument);
}

TEST(DecileDistance, ZeroForIdenticalSamples) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(decile_distance(v, v), 0.0);
}

TEST(DecileDistance, ShiftDetected) {
  std::vector<double> a(100), b(100);
  for (int i = 0; i < 100; ++i) {
    a[i] = static_cast<double>(i);
    b[i] = static_cast<double>(i) + 5.0;
  }
  EXPECT_NEAR(decile_distance(a, b), 5.0, 1e-9);
}

TEST(Characteristics, BundleMatchesIndividualMetrics) {
  std::vector<double> values(512);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(0.1 * static_cast<double>(i));
  }
  const auto c = byte_characteristics(values);
  EXPECT_DOUBLE_EQ(c.entropy, byte_entropy(std::span<const double>(values)));
  EXPECT_DOUBLE_EQ(c.mean, byte_mean(std::span<const double>(values)));
  EXPECT_DOUBLE_EQ(c.correlation,
                   serial_correlation(std::span<const double>(values)));
}

}  // namespace
}  // namespace rmp::stats
