#include "io/checksum.hpp"

#include <gtest/gtest.h>

#include <string>

#include "io/container.hpp"

namespace rmp::io {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, KnownVectors) {
  // Standard zlib test vectors.
  EXPECT_EQ(crc32({}), 0x00000000u);
  const auto check = bytes_of("123456789");
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  const auto hello = bytes_of("hello world");
  EXPECT_EQ(crc32(hello), 0x0D4A1185u);
}

TEST(Crc32, SensitiveToSingleBitFlip) {
  auto data = bytes_of("the quick brown fox");
  const std::uint32_t original = crc32(data);
  data[5] ^= 0x01;
  EXPECT_NE(crc32(data), original);
}

TEST(Crc32, SeedChaining) {
  const auto full = bytes_of("abcdef");
  const auto first = bytes_of("abc");
  const auto second = bytes_of("def");
  EXPECT_EQ(crc32(second, crc32(first)), crc32(full));
}

TEST(ContainerIntegrity, DetectsSectionCorruption) {
  Container c;
  c.method = "pca";
  c.nx = 2;
  c.add("delta", {10, 20, 30, 40, 50});
  auto bytes = serialize(c);
  // Flip a byte in the middle of the payload.
  bytes[bytes.size() / 2] ^= 0xFF;
  EXPECT_THROW(deserialize(bytes), std::runtime_error);
}

TEST(ContainerIntegrity, DetectsTrailerCorruption) {
  Container c;
  c.method = "svd";
  c.add("delta", {1, 2, 3});
  auto bytes = serialize(c);
  bytes.back() ^= 0x01;
  EXPECT_THROW(deserialize(bytes), std::runtime_error);
}

TEST(ContainerIntegrity, CleanRoundTripStillWorks) {
  Container c;
  c.method = "wavelet";
  c.nx = 3;
  c.ny = 4;
  c.nz = 5;
  c.add("sparse", {9, 8, 7});
  const Container back = deserialize(serialize(c));
  EXPECT_EQ(back.method, "wavelet");
  EXPECT_EQ(back.find("sparse")->bytes, (std::vector<std::uint8_t>{9, 8, 7}));
}

}  // namespace
}  // namespace rmp::io
