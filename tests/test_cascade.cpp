#include "core/cascade.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "compress/factory.hpp"
#include "core/pipeline.hpp"
#include "sim/heat.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_zfp_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_zfp_delta();
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

sim::Field heat_field() {
  sim::HeatConfig config;
  config.n = 14;
  config.steps = 100;
  config.hot_center_z = 0.6;
  return sim::heat3d_run(config);
}

TEST(Cascade, NameComposition) {
  CascadePreconditioner cascade("one-base", "pca");
  EXPECT_EQ(cascade.name(), "one-base>pca");
}

TEST(Cascade, RoundTripOneBaseThenPca) {
  Codecs codecs;
  CascadePreconditioner cascade("one-base", "pca");
  const sim::Field f = heat_field();
  const auto container = cascade.encode(f, codecs.pair(), nullptr);
  const auto decoded = cascade.decode(container, codecs.pair(), nullptr);
  EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 1.0);
}

TEST(Cascade, RoundTripPcaThenWavelet) {
  Codecs codecs;
  CascadePreconditioner cascade("pca", "wavelet");
  const sim::Field f = heat_field();
  const auto container = cascade.encode(f, codecs.pair(), nullptr);
  const auto decoded = cascade.decode(container, codecs.pair(), nullptr);
  EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 1.0);
}

TEST(Cascade, RegistryDispatchesSpecString) {
  Codecs codecs;
  const sim::Field f = heat_field();
  const auto cascade = make_preconditioner("one-base>svd");
  EXPECT_EQ(cascade->name(), "one-base>svd");
  const auto container = cascade->encode(f, codecs.pair(), nullptr);
  // reconstruct() must rebuild the cascade from the container method.
  const sim::Field decoded = reconstruct(container, codecs.pair());
  EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 1.0);
}

TEST(Cascade, StageOneStoresOnlyReducedRep) {
  // The nested stage-1 container's delta is the 8-byte null stream, so
  // the cascade's total size is stage-1 reduced + stage-2 everything.
  Codecs codecs;
  CascadePreconditioner cascade("one-base", "identity");
  EncodeStats cascade_stats, plain_stats;
  const sim::Field f = heat_field();
  cascade.encode(f, codecs.pair(), &cascade_stats);
  make_preconditioner("one-base")->encode(f, codecs.pair(), &plain_stats);
  // "one-base>identity" == one-base with the residual compressed at
  // original grade; sizes must be in the same ballpark (the nested v3
  // container headers add a few bytes of per-section checksum overhead).
  EXPECT_LE(cascade_stats.total_bytes, plain_stats.total_bytes * 4);
}

TEST(Cascade, RejectsMalformedSpecs) {
  EXPECT_THROW(make_cascade("justone"), std::invalid_argument);
  EXPECT_THROW(make_cascade(">pca"), std::invalid_argument);
  EXPECT_THROW(make_cascade("pca>"), std::invalid_argument);
  EXPECT_THROW(CascadePreconditioner("pca>svd", "wavelet"),
               std::invalid_argument);
  EXPECT_THROW(CascadePreconditioner("pca", "nonsense"),
               std::invalid_argument);
}

TEST(Cascade, DecodeRejectsMissingStages) {
  Codecs codecs;
  CascadePreconditioner cascade("pca", "svd");
  io::Container empty;
  empty.method = "pca>svd";
  EXPECT_THROW(cascade.decode(empty, codecs.pair(), nullptr),
               std::runtime_error);
}

}  // namespace
}  // namespace rmp::core
