#include "compress/factory.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rmp::compress {
namespace {

std::vector<double> sample_data() {
  std::vector<double> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 100.0 * std::sin(0.01 * static_cast<double>(i));
  }
  return data;
}

TEST(Factory, PaperConfigsConstruct) {
  EXPECT_EQ(make_sz_original()->name(), "sz-rel");
  EXPECT_EQ(make_sz_delta()->name(), "sz-rel");
  EXPECT_EQ(make_zfp_original()->name(), "zfp-prec");
  EXPECT_EQ(make_zfp_delta()->name(), "zfp-prec");
  EXPECT_EQ(make_fpc()->name(), "fpc");
}

TEST(Factory, LosslessFlags) {
  EXPECT_FALSE(make_sz_original()->lossless());
  EXPECT_FALSE(make_zfp_original()->lossless());
  EXPECT_TRUE(make_fpc()->lossless());
}

TEST(Factory, DeltaGradeIsLooser) {
  // The delta codecs use looser bounds (paper §V-B), so they must produce
  // smaller streams on identical data.
  const auto data = sample_data();
  const Dims dims = Dims::d1(data.size());
  EXPECT_LE(make_sz_delta()->compress(data, dims).size(),
            make_sz_original()->compress(data, dims).size());
  EXPECT_LT(make_zfp_delta()->compress(data, dims).size(),
            make_zfp_original()->compress(data, dims).size());
}

TEST(Factory, MakeByName) {
  EXPECT_EQ(make_by_name("sz")->name(), "sz-rel");
  EXPECT_EQ(make_by_name("zfp")->name(), "zfp-prec");
  EXPECT_EQ(make_by_name("fpc")->name(), "fpc");
  EXPECT_THROW(make_by_name("lz4"), std::invalid_argument);
}

TEST(Factory, CrossInstanceDecode) {
  // Streams are self-describing: any instance of the right codec class
  // can decode another instance's output.
  const auto data = sample_data();
  const auto stream = make_sz_original()->compress(data, Dims::d1(data.size()));
  const auto decoded = make_sz_delta()->decompress(stream);
  ASSERT_EQ(decoded.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(decoded[i], data[i], 100.0 * 1e-5 * 1.001);
  }
}

}  // namespace
}  // namespace rmp::compress
