#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "la/covariance.hpp"
#include "la/eigen.hpp"
#include "la/matrix.hpp"
#include "la/sparse.hpp"
#include "la/svd.hpp"

namespace rmp::la {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  Matrix m(rows, cols);
  for (double& v : m.flat()) v = dist(rng);
  return m;
}

TEST(Matrix, IdentityMultiply) {
  const Matrix a = random_matrix(5, 5, 1);
  const Matrix i = Matrix::identity(5);
  EXPECT_LT(Matrix::max_abs_diff(a * i, a), 1e-15);
  EXPECT_LT(Matrix::max_abs_diff(i * a, a), 1e-15);
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a = random_matrix(4, 7, 2);
  EXPECT_LT(Matrix::max_abs_diff(a.transposed().transposed(), a), 1e-15);
}

TEST(Matrix, MultiplyShapes) {
  const Matrix a = random_matrix(3, 4, 3);
  const Matrix b = random_matrix(4, 5, 4);
  const Matrix c = a * b;
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 5u);
  EXPECT_THROW(b * a, std::invalid_argument);
}

TEST(Matrix, KnownProduct) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, AddSubtract) {
  const Matrix a = random_matrix(3, 3, 5);
  const Matrix b = random_matrix(3, 3, 6);
  EXPECT_LT(Matrix::max_abs_diff((a + b) - b, a), 1e-14);
}

TEST(Eigen, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 1.0;
  a(2, 2) = 2.0;
  const auto eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-12);
}

TEST(Eigen, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 2;
  const auto eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
}

TEST(Eigen, ReconstructsMatrix) {
  // A = V diag(values) V^T must reproduce the input.
  Matrix sym(6, 6);
  const Matrix r = random_matrix(6, 6, 7);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      sym(i, j) = 0.5 * (r(i, j) + r(j, i));
    }
  }
  const auto eig = jacobi_eigen(sym);
  Matrix d(6, 6);
  for (std::size_t i = 0; i < 6; ++i) d(i, i) = eig.values[i];
  const Matrix rebuilt = eig.vectors * d * eig.vectors.transposed();
  EXPECT_LT(Matrix::max_abs_diff(rebuilt, sym), 1e-10);
}

TEST(Eigen, VectorsAreOrthonormal) {
  Matrix sym(8, 8);
  const Matrix r = random_matrix(8, 8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      sym(i, j) = 0.5 * (r(i, j) + r(j, i));
    }
  }
  const auto eig = jacobi_eigen(sym);
  const Matrix vtv = eig.vectors.transposed() * eig.vectors;
  EXPECT_LT(Matrix::max_abs_diff(vtv, Matrix::identity(8)), 1e-10);
}

TEST(Eigen, RejectsNonSquare) {
  EXPECT_THROW(jacobi_eigen(Matrix(2, 3)), std::invalid_argument);
}

TEST(Svd, ReconstructsTallMatrix) {
  const Matrix a = random_matrix(20, 6, 9);
  const auto svd = jacobi_svd(a);
  EXPECT_LT(Matrix::max_abs_diff(svd_reconstruct(svd), a), 1e-10);
}

TEST(Svd, ReconstructsWideMatrix) {
  const Matrix a = random_matrix(5, 12, 10);
  const auto svd = jacobi_svd(a);
  EXPECT_TRUE(svd.transposed);
  EXPECT_LT(Matrix::max_abs_diff(svd_reconstruct(svd), a), 1e-10);
}

TEST(Svd, SingularValuesSortedNonNegative) {
  const Matrix a = random_matrix(15, 7, 11);
  const auto svd = jacobi_svd(a);
  for (std::size_t i = 0; i + 1 < svd.sigma.size(); ++i) {
    EXPECT_GE(svd.sigma[i], svd.sigma[i + 1]);
  }
  for (double s : svd.sigma) EXPECT_GE(s, 0.0);
}

TEST(Svd, UOrthonormalColumns) {
  const Matrix a = random_matrix(12, 5, 12);
  const auto svd = jacobi_svd(a);
  const Matrix utu = svd.u.transposed() * svd.u;
  EXPECT_LT(Matrix::max_abs_diff(utu, Matrix::identity(5)), 1e-10);
}

TEST(Svd, KnownRankOne) {
  // Outer product u v^T has exactly one non-zero singular value.
  Matrix a(4, 3);
  const double u[4] = {1, 2, 3, 4};
  const double v[3] = {1, 0, -1};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = u[i] * v[j];
  }
  const auto svd = jacobi_svd(a);
  EXPECT_GT(svd.sigma[0], 1.0);
  EXPECT_NEAR(svd.sigma[1], 0.0, 1e-10);
  EXPECT_NEAR(svd.sigma[2], 0.0, 1e-10);
  EXPECT_LT(Matrix::max_abs_diff(svd_reconstruct(svd, 1), a), 1e-10);
}

TEST(Svd, TruncationErrorBoundedBySigma) {
  const Matrix a = random_matrix(30, 8, 13);
  const auto svd = jacobi_svd(a);
  for (std::size_t k = 1; k <= 8; ++k) {
    const Matrix approx = svd_reconstruct(svd, k);
    double frob = (a - approx).frobenius_norm();
    double tail = 0.0;
    for (std::size_t i = k; i < svd.sigma.size(); ++i) {
      tail += svd.sigma[i] * svd.sigma[i];
    }
    EXPECT_NEAR(frob, std::sqrt(tail), 1e-8) << "k=" << k;
  }
}

TEST(Covariance, MeansAndCentering) {
  Matrix a(4, 2);
  a(0, 0) = 1; a(1, 0) = 2; a(2, 0) = 3; a(3, 0) = 4;
  a(0, 1) = 10; a(1, 1) = 10; a(2, 1) = 10; a(3, 1) = 10;
  const auto means = column_means(a);
  EXPECT_DOUBLE_EQ(means[0], 2.5);
  EXPECT_DOUBLE_EQ(means[1], 10.0);

  Matrix c = a;
  center_columns(c, means);
  const auto centered_means = column_means(c);
  EXPECT_NEAR(centered_means[0], 0.0, 1e-15);
  uncenter_columns(c, means);
  EXPECT_LT(Matrix::max_abs_diff(c, a), 1e-15);
}

TEST(Covariance, KnownValues) {
  // Two perfectly correlated columns.
  Matrix a(3, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;
  a(2, 0) = 3; a(2, 1) = 6;
  const Matrix c = covariance(a);
  EXPECT_NEAR(c(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(c(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(c(1, 1), 4.0, 1e-12);
  EXPECT_NEAR(c(0, 1), c(1, 0), 1e-15);
}

TEST(Sparse, DenseRoundTrip) {
  Matrix a(5, 7);
  a(0, 0) = 1.5;
  a(2, 3) = -2.5;
  a(4, 6) = 1e-12;
  const CsrMatrix csr = CsrMatrix::from_dense(a);
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_LT(Matrix::max_abs_diff(csr.to_dense(), a), 0.0 + 1e-300);
}

TEST(Sparse, ThresholdDropsSmallEntries) {
  Matrix a(2, 2);
  a(0, 0) = 0.5;
  a(1, 1) = 0.01;
  const CsrMatrix csr = CsrMatrix::from_dense(a, 0.1);
  EXPECT_EQ(csr.nnz(), 1u);
  EXPECT_DOUBLE_EQ(csr.to_dense()(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(csr.to_dense()(1, 1), 0.0);
}

TEST(Sparse, SerializeRoundTrip) {
  const Matrix a = random_matrix(9, 11, 14);
  const CsrMatrix csr = CsrMatrix::from_dense(a, 0.8);
  const auto bytes = csr.serialize();
  const CsrMatrix back = CsrMatrix::deserialize(bytes.data(), bytes.size());
  EXPECT_EQ(back.rows(), csr.rows());
  EXPECT_EQ(back.cols(), csr.cols());
  EXPECT_EQ(back.nnz(), csr.nnz());
  EXPECT_LT(Matrix::max_abs_diff(back.to_dense(), csr.to_dense()), 1e-300);
}

TEST(Sparse, DeserializeRejectsTruncated) {
  const CsrMatrix csr = CsrMatrix::from_dense(random_matrix(3, 3, 15), 0.5);
  const auto bytes = csr.serialize();
  EXPECT_THROW(CsrMatrix::deserialize(bytes.data(), bytes.size() - 1),
               std::runtime_error);
}

TEST(Sparse, StorageBytesAccounting) {
  Matrix a(4, 4);
  a(1, 1) = 2.0;
  a(2, 2) = 3.0;
  const CsrMatrix csr = CsrMatrix::from_dense(a);
  // 2 values (8B) + 2 col indices (4B) + 5 row offsets (8B).
  EXPECT_EQ(csr.storage_bytes(), 2 * 8 + 2 * 4 + 5 * 8u);
}

}  // namespace
}  // namespace rmp::la
