// Self-healing store tests (DESIGN.md §14): startup recovery over torn
// journals and damaged archives, quarantine with a manifest, the fsync'd
// request log behind idempotent retries, and the end-to-end exactly-once
// guarantee -- a kill at every faultable syscall of a tokened append run,
// followed by recovery plus a client-style retry, must converge to an
// archive byte-identical to an uninterrupted run with every append
// applied exactly once.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fault_injection.hpp"
#include "io/container.hpp"
#include "io/sequence_file.hpp"
#include "io/store_health.hpp"
#include "obs/obs.hpp"

namespace rmp::io {
namespace {

namespace fs = std::filesystem;

constexpr int kSteps = 3;

/// Small multi-section steps: three sections so double corruption can
/// defeat single-section XOR parity, and small payloads so every-byte
/// sweeps stay fast.
Container sample(int i) {
  Container c;
  c.method = "heal_step" + std::to_string(i);
  c.nx = static_cast<std::uint64_t>(i + 1);
  c.ny = 3;
  c.add("data", std::vector<std::uint8_t>(static_cast<std::size_t>(20 + 5 * i),
                                          static_cast<std::uint8_t>(0x60 + i)));
  c.add("meta", std::vector<std::uint8_t>{9, 8, 7, 6});
  c.add("tail", std::vector<std::uint8_t>(11, static_cast<std::uint8_t>(i)));
  return c;
}

std::uint64_t token(int i) { return 0xBEEF0000u + static_cast<unsigned>(i); }

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void spit(const fs::path& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::string slurp_text(const fs::path& path) {
  const auto bytes = slurp(path);
  return {bytes.begin(), bytes.end()};
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rmp_recovery_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    obs::set_enabled(true);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path fresh_store(const std::string& name) {
    const fs::path store = dir_ / name;
    fs::remove_all(store);
    fs::create_directories(store);
    return store;
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// Startup recovery: torn journals

TEST_F(RecoveryTest, TornJournalAtEveryByteRecoversToIdenticalArchive) {
  // Reference: an uninterrupted 3-step run, published.
  const fs::path ref_store = fresh_store("ref");
  {
    SequenceWriter writer(ref_store / "run.rmps");
    for (int i = 0; i < kSteps; ++i) writer.append(sample(i));
    writer.finish();
  }
  const auto reference = slurp(ref_store / "run.rmps");
  ASSERT_FALSE(reference.empty());

  // A fully-committed journal (writer abandoned before finish).
  const fs::path donor_store = fresh_store("donor");
  const fs::path donor_journal =
      sequence_journal_path(donor_store / "run.rmps");
  {
    SequenceWriter writer(donor_store / "run.rmps");
    for (int i = 0; i < kSteps; ++i) writer.append(sample(i));
    // No finish(): the destructor leaves a resumable journal behind.
  }
  const auto journal = slurp(donor_journal);
  ASSERT_FALSE(journal.empty());

  bool saw_partial_prefix = false;
  for (std::size_t cut = 1; cut <= journal.size(); ++cut) {
    const fs::path store = fresh_store("cut");
    const fs::path dest = store / "run.rmps";
    spit(sequence_journal_path(dest),
         std::span(journal.data(), cut));

    const RecoveryResult recovery = recover_store(store, {});
    ASSERT_EQ(recovery.report.journals_resumed +
                  recovery.report.journals_quarantined,
              1u)
        << "cut=" << cut;
    if (recovery.report.journals_quarantined > 0) continue;

    const auto it = recovery.sequences.find("run.rmps");
    ASSERT_NE(it, recovery.sequences.end()) << "cut=" << cut;
    SequenceWriter& writer = *it->second.writer;
    const auto committed = writer.steps_written();
    ASSERT_LE(committed, static_cast<std::uint64_t>(kSteps)) << "cut=" << cut;
    saw_partial_prefix = saw_partial_prefix ||
                         (committed > 0 && committed < kSteps);

    for (auto s = committed; s < kSteps; ++s) {
      writer.append(sample(static_cast<int>(s)));
    }
    writer.finish();
    EXPECT_EQ(slurp(dest), reference)
        << "cut=" << cut << ": resumed archive differs";
  }
  EXPECT_TRUE(saw_partial_prefix)
      << "no cut point exercised a partial committed prefix";
}

// ---------------------------------------------------------------------------
// Startup recovery: published archives

TEST_F(RecoveryTest, ParityRepairableArchiveIsHealedInPlace) {
  const fs::path store = fresh_store("store");
  const Container original = sample(0);
  SerializeOptions options;
  options.with_parity = true;
  const auto pristine = serialize(original, options);

  auto damaged = pristine;
  testing::corrupt_section(damaged, original, /*with_parity=*/true, 0);
  ASSERT_NE(damaged, pristine);
  spit(store / "field.rmp", damaged);

  const RecoveryResult recovery = recover_store(store, options);
  EXPECT_EQ(recovery.report.scrub.files_repaired, 1u);
  EXPECT_GE(recovery.report.scrub.sections_repaired, 1u);
  EXPECT_EQ(recovery.report.scrub.files_quarantined, 0u);

  // Healed in place: the republished file is byte-identical to the
  // pristine serialization and decodes cleanly.
  EXPECT_EQ(slurp(store / "field.rmp"), pristine);
  ReadReport report;
  const Container decoded = deserialize(slurp(store / "field.rmp"), &report);
  EXPECT_TRUE(report.complete());
  EXPECT_FALSE(report.repaired());
  EXPECT_EQ(decoded.method, original.method);
}

TEST_F(RecoveryTest, UnrecoverableArchiveIsQuarantinedWithManifestEntry) {
  const fs::path store = fresh_store("store");
  const Container original = sample(1);
  SerializeOptions options;
  options.with_parity = true;
  auto damaged = serialize(original, options);
  // Two damaged sections defeat single-section XOR parity.
  testing::corrupt_section(damaged, original, /*with_parity=*/true, 0);
  testing::corrupt_section(damaged, original, /*with_parity=*/true, 1);
  spit(store / "field.rmp", damaged);

  const RecoveryResult recovery = recover_store(store, options);
  EXPECT_EQ(recovery.report.scrub.files_quarantined, 1u);
  EXPECT_EQ(recovery.report.scrub.files_repaired, 0u);

  // Moved out of the serving path, preserved under quarantine/, and
  // recorded in the manifest with its name and a reason.
  EXPECT_FALSE(fs::exists(store / "field.rmp"));
  EXPECT_TRUE(fs::exists(quarantine_dir(store) / "field.rmp"));
  ASSERT_TRUE(fs::exists(quarantine_manifest_path(store)));
  const std::string manifest = slurp_text(quarantine_manifest_path(store));
  EXPECT_NE(manifest.find("field.rmp"), std::string::npos);
  EXPECT_NE(manifest.find("reason"), std::string::npos);

  // A second pass over the now-clean store finds nothing to do.
  const ScrubReport again = scrub_store(store);
  EXPECT_EQ(again.files_quarantined, 0u);
  EXPECT_EQ(again.files_repaired, 0u);
}

TEST_F(RecoveryTest, ScrubSkipListLeavesLiveSequencesAlone) {
  const fs::path store = fresh_store("store");
  spit(store / "live.rmps", std::vector<std::uint8_t>(64, 0xAB));
  ScrubOptions options;
  options.skip = {"live.rmps"};
  const ScrubReport report = scrub_store(store, options);
  EXPECT_EQ(report.files_quarantined, 0u);
  EXPECT_TRUE(fs::exists(store / "live.rmps"));

  // Without the skip, the same garbage is quarantined.
  const ScrubReport unskipped = scrub_store(store);
  EXPECT_EQ(unskipped.files_quarantined, 1u);
  EXPECT_FALSE(fs::exists(store / "live.rmps"));
}

// ---------------------------------------------------------------------------
// Request log

TEST_F(RecoveryTest, RequestLogScansCommittedPrefixAndIgnoresTornTail) {
  const fs::path store = fresh_store("store");
  const fs::path dest = store / "run.rmps";
  {
    RequestLog log = RequestLog::open(dest, /*fresh=*/true);
    log.record(token(0), 0);
    log.record(token(1), 1);
    log.record(token(2), 2);
  }
  const fs::path log_path = request_log_path(dest);
  auto entries = scan_request_log(log_path);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[1].token, token(1));
  EXPECT_EQ(entries[1].step, 1u);

  // Tear the last record mid-way: the committed prefix survives, the
  // torn tail is ignored...
  auto bytes = slurp(log_path);
  spit(log_path, std::span(bytes.data(), bytes.size() - 5));
  entries = scan_request_log(log_path);
  ASSERT_EQ(entries.size(), 2u);

  // ...and a non-fresh reopen truncates it away so appends stay aligned.
  {
    RequestLog log = RequestLog::open(dest, /*fresh=*/false);
    log.record(token(3), 2);
  }
  entries = scan_request_log(log_path);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[2].token, token(3));

  // A fresh generation must not inherit a predecessor's intents.
  { RequestLog log = RequestLog::open(dest, /*fresh=*/true); }
  EXPECT_TRUE(scan_request_log(log_path).empty());
}

TEST_F(RecoveryTest, RequestLogRollbackWithdrawsTheFailedIntent) {
  const fs::path store = fresh_store("store");
  const fs::path dest = store / "run.rmps";
  RequestLog log = RequestLog::open(dest, /*fresh=*/true);
  log.record(token(0), 0);
  log.record(token(1), 1);  // the append this described will "fail"
  log.rollback_last();
  log.record(token(2), 1);  // a later request reuses the step index
  const auto entries = scan_request_log(request_log_path(dest));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].token, token(0));
  EXPECT_EQ(entries[1].token, token(2));
  EXPECT_EQ(entries[1].step, 1u);
}

// ---------------------------------------------------------------------------
// Exactly-once across a crash: kill at every syscall, recover, retry

TEST_F(RecoveryTest, KillAtEverySyscallThenRetryAppliesEachTokenExactlyOnce) {
  const auto policy = testing::instant_retry_policy();
  SerializeOptions options;
  options.retry = policy;

  // The full tokened-append protocol, as the server runs it: intent
  // fsync'd before each append, publish at the end.
  const auto run_protocol = [&](const fs::path& store) {
    const fs::path dest = store / "run.rmps";
    SequenceWriter writer(dest, options);
    auto log = std::make_unique<RequestLog>(
        RequestLog::open(dest, /*fresh=*/true, policy));
    for (int i = 0; i < kSteps; ++i) {
      log->record(token(i), writer.steps_written());
      writer.append(sample(i));
    }
    writer.finish();
  };

  const fs::path ref_store = fresh_store("ref");
  run_protocol(ref_store);
  const auto reference = slurp(ref_store / "run.rmps");
  ASSERT_FALSE(reference.empty());

  // Calibrate the number of faultable ops in one uninterrupted run.
  std::uint64_t total_ops = 0;
  {
    const fs::path probe_store = fresh_store("probe");
    testing::ScopedFaultInjection probe({FaultKind::kNone, 1});
    run_protocol(probe_store);
    total_ops = probe.ops_seen();
  }
  ASSERT_GT(total_ops, 10u) << "op count implausibly small; seam bypassed?";

  int replays = 0;
  int reexecutions = 0;
  for (std::uint64_t k = 1; k <= total_ops; ++k) {
    const std::string where = "kill@" + std::to_string(k);
    const fs::path store = fresh_store("crash");
    const fs::path dest = store / "run.rmps";
    bool completed = false;
    {
      testing::ScopedFaultInjection inject({FaultKind::kKill, k});
      try {
        run_protocol(store);
        completed = true;
      } catch (const ContainerError&) {
      }
    }
    ASSERT_FALSE(completed) << where << " did not stop the run";

    // --- restart: recover the store.
    RecoveryResult recovery = recover_store(store, options);

    std::unique_ptr<SequenceWriter> writer;
    if (const auto it = recovery.sequences.find("run.rmps");
        it != recovery.sequences.end()) {
      writer = std::move(it->second.writer);
    }

    // --- the client retries every token; the dedup decision rule
    // replays tokens recovery proved durable and re-executes the rest.
    std::vector<int> pending;
    for (int i = 0; i < kSteps; ++i) {
      const auto it = recovery.replayable.find(token(i));
      if (it != recovery.replayable.end()) {
        EXPECT_EQ(it->second.step, static_cast<std::uint64_t>(i)) << where;
        EXPECT_EQ(it->second.sequence, "run.rmps") << where;
        ++replays;
        continue;
      }
      pending.push_back(i);
      ++reexecutions;
    }
    // Committed steps and replayable tokens must agree: the pending
    // tokens are exactly the journal's uncommitted tail.
    if (writer) {
      ASSERT_EQ(pending.size(),
                static_cast<std::size_t>(kSteps) - writer->steps_written())
          << where;
    }

    if (!pending.empty()) {
      const bool fresh_generation = writer == nullptr;
      if (!writer) {
        ASSERT_FALSE(fs::exists(dest))
            << where << ": published archive missing replay intents";
        writer = std::make_unique<SequenceWriter>(dest, options);
      }
      auto log = std::make_unique<RequestLog>(
          RequestLog::open(dest, fresh_generation, policy));
      for (const int i : pending) {
        ASSERT_EQ(writer->steps_written(), static_cast<std::uint64_t>(i))
            << where;
        log->record(token(i), writer->steps_written());
        writer->append(sample(i));
      }
      writer->finish();
    } else if (writer) {
      writer->finish();
    }

    ASSERT_EQ(slurp(dest), reference)
        << where << ": post-recovery archive differs from uninterrupted run";
  }
  // The sweep must exercise both halves of the decision rule.
  EXPECT_GT(replays, 0) << "no kill point left a durably-applied token";
  EXPECT_GT(reexecutions, 0) << "no kill point required a re-execution";
}

}  // namespace
}  // namespace rmp::io
