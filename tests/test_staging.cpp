#include "core/staging.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "compress/factory.hpp"
#include "core/pipeline.hpp"
#include "fault_injection.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

namespace fs = std::filesystem;

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_zfp_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_zfp_delta();
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

sim::Field wavy(std::size_t n, double phase) {
  sim::Field f(n, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        f.at(i, j, k) = std::sin(0.3 * static_cast<double>(i) + phase) +
                        std::cos(0.2 * static_cast<double>(j + k));
      }
    }
  }
  return f;
}

TEST(Staging, ProcessesEverySubmission) {
  Codecs codecs;
  StagingNode node(codecs.pair(), {.method = "pca"});
  for (int s = 0; s < 6; ++s) {
    node.submit(wavy(10, 0.1 * s));
  }
  node.drain();
  const auto stats = node.stats();
  EXPECT_EQ(stats.fields_submitted, 6u);
  EXPECT_EQ(stats.fields_completed, 6u);
  EXPECT_EQ(stats.bytes_in, 6u * 1000 * sizeof(double));
  EXPECT_GT(stats.bytes_out, 0u);
  EXPECT_LT(stats.bytes_out, stats.bytes_in);
  EXPECT_EQ(node.results().size(), 6u);
}

TEST(Staging, ResultsAreDecodableContainers) {
  Codecs codecs;
  const sim::Field field = wavy(12, 0.7);
  StagingNode node(codecs.pair(), {.method = "one-base"});
  node.submit(field);
  node.drain();
  ASSERT_EQ(node.results().size(), 1u);
  const sim::Field decoded = reconstruct(node.results()[0], codecs.pair());
  EXPECT_LT(stats::rmse(field.flat(), decoded.flat()), 0.1);
}

TEST(Staging, WritesToDirectoryWhenConfigured) {
  Codecs codecs;
  const auto dir = fs::temp_directory_path() / "rmp_staging_test";
  fs::create_directories(dir);
  {
    StagingNode node(codecs.pair(),
                     {.method = "identity", .output_dir = dir});
    node.submit(wavy(8, 0.0));
    node.submit(wavy(8, 1.0));
    node.drain();
    EXPECT_TRUE(node.results().empty());  // persisted, not retained
  }
  EXPECT_TRUE(fs::exists(dir / "field_0.rmp"));
  EXPECT_TRUE(fs::exists(dir / "field_1.rmp"));
  const auto loaded = io::read_container(dir / "field_1.rmp");
  EXPECT_EQ(loaded.method, "identity");
  fs::remove_all(dir);
}

TEST(Staging, BackpressureBoundsQueue) {
  Codecs codecs;
  StagingNode node(codecs.pair(), {.method = "svd", .max_queue = 2});
  // Submissions beyond the queue bound must block (and therefore record
  // submit-side wait time) rather than grow memory unboundedly.
  for (int s = 0; s < 8; ++s) {
    node.submit(wavy(12, 0.2 * s));
  }
  node.drain();
  EXPECT_EQ(node.stats().fields_completed, 8u);
}

TEST(Staging, StatsTrackCompressionTime) {
  Codecs codecs;
  StagingNode node(codecs.pair(), {.method = "pca"});
  node.submit(wavy(12, 0.5));
  node.drain();
  EXPECT_GT(node.stats().total_compress_seconds, 0.0);
}

TEST(Staging, WriteFailureIsRecordedNotFatal) {
  // A full disk on the staging node must not terminate the process (an
  // escaped exception in the worker thread would): the failure lands in
  // stats and later submissions keep flowing.
  Codecs codecs;
  const auto dir = fs::temp_directory_path() / "rmp_staging_fail_test";
  fs::create_directories(dir);
  {
    StagingNode node(codecs.pair(), {.method = "identity", .output_dir = dir});
    {
      // Every durable-write syscall fails while installed; the injector
      // stays alive until the poisoned submission has fully drained.
      testing::ScopedFaultInjection inject(
          {io::FaultKind::kEnospc, 1, 1u << 20});
      node.submit(wavy(8, 0.3));
      node.drain();
    }
    node.submit(wavy(8, 0.9));
    node.drain();

    const auto stats = node.stats();
    EXPECT_EQ(stats.fields_submitted, 2u);
    EXPECT_EQ(stats.fields_failed, 1u);
    EXPECT_EQ(stats.fields_completed, 1u);
    EXPECT_NE(stats.last_error.find("No space left"), std::string::npos)
        << stats.last_error;
  }
  // The surviving submission published; the failed one left no debris.
  std::size_t archives = 0, strays = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".rmp") ++archives;
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) {
      ++strays;
    }
  }
  EXPECT_EQ(archives, 1u);
  EXPECT_EQ(strays, 0u);
  fs::remove_all(dir);
}

TEST(Staging, DrainOnEmptyNodeReturnsImmediately) {
  Codecs codecs;
  StagingNode node(codecs.pair(), {});
  node.drain();
  EXPECT_EQ(node.stats().fields_submitted, 0u);
}

}  // namespace
}  // namespace rmp::core
