// In-process rmpd server robustness tests (DESIGN.md §11): round trips,
// typed BUSY under saturation, end-to-end deadlines, protocol-fault
// session teardown, and graceful-drain semantics.  The server binds
// 127.0.0.1 on an ephemeral port per test; raw-socket helpers speak the
// wire protocol directly where a well-behaved Client cannot express the
// misbehavior under test (garbage bytes, torn frames).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/container.hpp"
#include "io/sequence_file.hpp"
#include "io/store_health.hpp"
#include "net/client.hpp"
#include "net/net_error.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"

namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;
using namespace rmp;
using net::Client;
using net::ClientOptions;
using net::MsgType;
using net::NetErrc;
using net::NetError;
using net::RemoteError;
using net::Server;
using net::ServerOptions;
using net::Status;

/// Poll `pred` until it holds (returns true) or 5 s pass (returns false).
/// Server counters update after the response is sent, so tests that
/// assert on stats after a client round trip must tolerate a short skew.
bool wait_for(const std::function<bool()>& pred) {
  const auto give_up = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < give_up) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

net::EncodeRequest small_encode_request() {
  net::EncodeRequest request;
  request.method = "pca";
  request.nx = 16;
  request.ny = 16;
  request.nz = 16;
  request.data.resize(16 * 16 * 16);
  for (std::size_t i = 0; i < request.data.size(); ++i) {
    request.data[i] = std::sin(0.01 * static_cast<double>(i)) * 40.0;
  }
  return request;
}

ClientOptions client_options(const Server& server,
                             std::chrono::milliseconds deadline = 0ms) {
  ClientOptions options;
  options.port = server.port();
  options.deadline = deadline;
  return options;
}

/// A raw TCP connection for speaking deliberately-broken protocol.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    // Never let a misbehaving server wedge the test binary.
    timeval timeout{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }
  void send(const std::vector<std::uint8_t>& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }
  /// Read everything until the peer closes its end (EOF); returns the
  /// collected bytes.  Sets `*closed` true iff EOF was reached.
  std::vector<std::uint8_t> recv_until_close(bool* closed) {
    std::vector<std::uint8_t> out;
    *closed = false;
    while (true) {
      std::uint8_t chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) {
        *closed = true;
        break;
      }
      if (n < 0) break;
      out.insert(out.end(), chunk, chunk + n);
    }
    return out;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(NetServer, PingEncodeDecodeVerifyRoundTrip) {
  Server server(ServerOptions{});
  server.start();
  Client client(client_options(server));
  client.ping();

  const auto request = small_encode_request();
  const auto encoded = client.encode(request);
  EXPECT_FALSE(encoded.stored);
  EXPECT_FALSE(encoded.container.empty());
  EXPECT_LT(encoded.container.size(), request.data.size() * sizeof(double));

  net::DecodeRequest decode_request;
  decode_request.container = encoded.container;
  const auto decoded = client.decode(decode_request);
  EXPECT_EQ(decoded.nx, 16u);
  ASSERT_EQ(decoded.data.size(), request.data.size());
  for (std::size_t i = 0; i < decoded.data.size(); ++i) {
    ASSERT_NEAR(decoded.data[i], request.data[i], 0.05) << i;
  }

  net::VerifyRequest verify_request;
  verify_request.container = encoded.container;
  const auto verdict = client.verify(verify_request);
  EXPECT_TRUE(verdict.complete);
  EXPECT_FALSE(verdict.repaired);

  EXPECT_TRUE(wait_for([&] { return server.stats().completed == 3; }));
  const auto stats = client.stats();
  EXPECT_EQ(stats.accepted, 3u);  // ping/stats bypass the queue
  EXPECT_EQ(stats.failed, 0u);
}

TEST(NetServer, MalformedRequestGetsBadRequestNotTeardown) {
  Server server(ServerOptions{});
  server.start();
  Client client(client_options(server));
  net::EncodeRequest request = small_encode_request();
  request.method = "no-such-method";
  try {
    (void)client.encode(request);
    FAIL() << "bogus method accepted";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest) << e.what();
  }
  // Application-level rejection is not a protocol error: the session
  // survives and the next request on the same connection succeeds.
  client.ping();
  EXPECT_TRUE(wait_for([&] { return server.stats().failed == 1; }));
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(NetServer, DamagedContainerYieldsIntegrityStatus) {
  Server server(ServerOptions{});
  server.start();
  Client client(client_options(server));
  net::DecodeRequest request;
  request.container = {'n', 'o', 't', ' ', 'a', 'n', ' ', 'r', 'm', 'p'};
  try {
    (void)client.decode(request);
    FAIL() << "garbage container decoded";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), Status::kIntegrityError) << e.what();
  }
}

TEST(NetServer, SaturationYieldsTypedBusy) {
  // One worker stalled 600 ms per job + a queue of one: the first request
  // occupies the worker, the second fills the queue, the third must be
  // rejected BUSY immediately (not queued, not blocked).
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.debug_stall = 600ms;
  Server server(options);
  server.start();

  const auto request = small_encode_request();

  Client a(client_options(server));
  Client b(client_options(server));
  Client c(client_options(server));
  std::thread first([&] { (void)a.encode(request); });
  // Wait until the worker holds the first job (popped, queue empty again).
  ASSERT_TRUE(wait_for([&] {
    return server.stats().accepted >= 1 && server.queue_depth() == 0;
  }));
  std::thread second([&] { (void)b.encode(request); });
  // Wait until the second job fills the queue's single slot.
  ASSERT_TRUE(wait_for([&] { return server.queue_depth() == 1; }));

  bool busy = false;
  try {
    (void)c.encode(request);
  } catch (const RemoteError& e) {
    busy = e.status() == Status::kBusy;
    EXPECT_EQ(e.status(), Status::kBusy) << e.what();
  }
  EXPECT_TRUE(busy) << "saturated server accepted a third request";
  first.join();
  second.join();

  const auto stats = server.stats();
  EXPECT_GE(stats.rejected_busy, 1u);
}

TEST(NetServer, ExpiredDeadlineIsRefusedAtPickup) {
  ServerOptions options;
  options.workers = 1;
  options.debug_stall = 250ms;  // job sits past its 50 ms budget
  Server server(options);
  server.start();
  Client client(client_options(server, /*deadline=*/50ms));
  try {
    (void)client.encode(small_encode_request());
    FAIL() << "expired deadline produced a result";
  } catch (const NetError& e) {
    // Either side may win the race: the server refuses to start the job
    // (RemoteError kDeadlineExceeded) or the client's local receive
    // budget runs out first.  Both are the deadline class.
    EXPECT_EQ(e.code(), NetErrc::kDeadlineExceeded) << e.what();
  }
  // The server keeps serving afterwards.
  Client fresh(client_options(server));
  fresh.ping();
  // The worker records the job's outcome only after its stall; wait for
  // the books to balance instead of racing them.
  EXPECT_TRUE(wait_for([&] {
    const auto stats = server.stats();
    return stats.deadline_missed + stats.completed == stats.accepted;
  }));
  EXPECT_GE(server.stats().deadline_missed, 1u);
}

TEST(NetServer, GarbageHeaderTearsSessionDownTyped) {
  Server server(ServerOptions{});
  server.start();
  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  std::vector<std::uint8_t> garbage(64, 0x5A);
  conn.send(garbage);
  // The server answers with a typed error frame, then closes.
  bool closed = false;
  const auto reply = conn.recv_until_close(&closed);
  EXPECT_TRUE(closed) << "server left the session open after garbage";
  ASSERT_GE(reply.size(), net::kFrameHeaderBytes);
  net::FrameDecoder decoder;
  decoder.feed(reply);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->header.type, MsgType::kError);
  EXPECT_EQ(frame->header.status, Status::kBadRequest);

  // The server survives and other sessions are unaffected.
  Client client(client_options(server));
  client.ping();
  EXPECT_GE(server.stats().protocol_errors, 1u);
}

TEST(NetServer, TornFrameOnDisconnectCountsAsProtocolError) {
  Server server(ServerOptions{});
  server.start();
  {
    RawConn conn(server.port());
    ASSERT_TRUE(conn.connected());
    const auto wire = net::encode_frame(MsgType::kPing, 1, 0, {});
    conn.send({wire.begin(), wire.begin() + 12});  // torn mid-header
  }  // disconnect with buffered bytes
  // Teardown is asynchronous; poll the counter briefly.
  bool counted = false;
  for (int i = 0; i < 100 && !counted; ++i) {
    counted = server.stats().protocol_errors >= 1;
    if (!counted) std::this_thread::sleep_for(20ms);
  }
  EXPECT_TRUE(counted);
  Client client(client_options(server));
  client.ping();  // still alive
}

TEST(NetServer, CleanDisconnectBetweenFramesIsNotAnError) {
  Server server(ServerOptions{});
  server.start();
  {
    Client client(client_options(server));
    client.ping();
  }  // client hangs up cleanly
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(NetServer, DrainFinishesAdmittedWorkAndRefusesNew) {
  ServerOptions options;
  options.workers = 1;
  options.debug_stall = 200ms;
  Server server(options);
  server.start();

  Client client(client_options(server));
  net::EncodeResponse admitted_result;
  std::thread admitted([&] {
    try {
      admitted_result = client.encode(small_encode_request());
    } catch (const std::exception& e) {
      ADD_FAILURE() << "admitted request did not complete: " << e.what();
    }
  });
  // A second session established BEFORE the drain: the drain must answer
  // its requests with the typed SHUTTING_DOWN rejection.  (Connections
  // arriving after the drain starts are simply not accepted.)
  Client late(client_options(server));
  late.ping();
  ASSERT_TRUE(wait_for([&] { return server.stats().accepted >= 1; }));

  server.request_drain();
  EXPECT_TRUE(server.draining());

  try {
    (void)late.encode(small_encode_request());
    ADD_FAILURE() << "draining server accepted new work";
  } catch (const NetError& e) {
    EXPECT_EQ(e.code(), NetErrc::kShuttingDown) << e.what();
  }

  server.drain();
  admitted.join();
  // The admitted request completed with a full response despite the drain.
  EXPECT_FALSE(admitted_result.container.empty());
  const auto stats = server.stats();
  EXPECT_GE(stats.rejected_shutdown, 1u);
  EXPECT_GE(stats.completed, 1u);
}

TEST(NetServer, StoreModeIsDurableAndSequencesPublishOnDrain) {
  const fs::path dir =
      fs::temp_directory_path() / "rmpd_store_test" /
      std::to_string(::getpid());
  fs::remove_all(dir.parent_path());
  ServerOptions options;
  options.output_dir = dir;
  Server server(options);
  server.start();
  {
    Client client(client_options(server));
    auto request = small_encode_request();
    request.store = net::StoreMode::kFile;
    request.store_name = "stored.rmp";
    const auto response = client.encode(request);
    EXPECT_TRUE(response.stored);
    // The response is only released after the bytes are durable.
    EXPECT_TRUE(fs::exists(dir / "stored.rmp"));

    request.store = net::StoreMode::kSequence;
    request.store_name = "steps.rmps";
    (void)client.encode(request);
    (void)client.encode(request);
    // Journaled, not yet published.
    EXPECT_TRUE(fs::exists(dir / "steps.rmps.part"));
  }
  server.drain();
  EXPECT_TRUE(fs::exists(dir / "steps.rmps"));
  EXPECT_FALSE(fs::exists(dir / "steps.rmps.part"));
  fs::remove_all(dir.parent_path());
}

TEST(NetServer, StoreNameEscapingTheOutputDirIsRejected) {
  const fs::path dir = fs::temp_directory_path() / "rmpd_escape_test" /
                       std::to_string(::getpid());
  fs::remove_all(dir.parent_path());
  ServerOptions options;
  options.output_dir = dir;
  Server server(options);
  server.start();
  Client client(client_options(server));
  for (const std::string name : {"../evil.rmp", "a/b.rmp", ".hidden"}) {
    auto request = small_encode_request();
    request.store = net::StoreMode::kFile;
    request.store_name = name;
    try {
      (void)client.encode(request);
      ADD_FAILURE() << "store name accepted: " << name;
    } catch (const RemoteError& e) {
      EXPECT_EQ(e.status(), Status::kBadRequest) << name;
    }
  }
  fs::remove_all(dir.parent_path());
}

TEST(NetServer, StoreWithoutOutputDirIsBadRequest) {
  Server server(ServerOptions{});
  server.start();
  Client client(client_options(server));
  auto request = small_encode_request();
  request.store = net::StoreMode::kFile;
  request.store_name = "x.rmp";
  try {
    (void)client.encode(request);
    FAIL() << "bytes-only server accepted a store request";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.status(), Status::kBadRequest);
  }
}

TEST(NetServer, ManyConcurrentClientsAllComplete) {
  ServerOptions options;
  options.queue_capacity = 64;
  Server server(options);
  server.start();
  constexpr int kClients = 8;
  constexpr int kRequests = 4;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      Client client(client_options(server));
      for (int r = 0; r < kRequests; ++r) {
        const auto response = client.encode(small_encode_request());
        if (!response.container.empty()) ok.fetch_add(1);
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(ok.load(), kClients * kRequests);
  // completed is incremented after each response goes out; allow the
  // last worker a moment to balance the books.
  EXPECT_TRUE(wait_for([&] {
    return server.stats().completed ==
           static_cast<std::uint64_t>(kClients * kRequests);
  }));
  EXPECT_EQ(server.stats().failed, 0u);
  server.drain();
}

// ---------------------------------------------------------------------------
// Self-healing surface (DESIGN.md §14)

TEST(NetServer, ByteBudgetAdmissionShedsWithRetryAfterHint) {
  // A budget that fits one 32 KiB encode payload but not two: the second
  // concurrent request must be shed with a typed BUSY carrying a
  // retry_after_ms hint, while the queue (counting requests) still has
  // plenty of room.
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 16;
  // The stall is the window in which the first request pins the budget;
  // it must outlast client b's connect+send even on a loaded CI box, or
  // the budget frees early and nothing is shed.
  options.debug_stall = 1000ms;
  options.max_inflight_bytes = 40'000;
  Server server(options);
  server.start();

  const auto request = small_encode_request();
  Client a(client_options(server));
  std::thread first([&] { (void)a.encode(request); });
  ASSERT_TRUE(wait_for([&] { return server.stats().accepted >= 1; }));

  Client b(client_options(server));
  bool shed = false;
  try {
    (void)b.encode(request);
  } catch (const RemoteError& e) {
    shed = e.status() == Status::kBusy;
    EXPECT_GT(e.retry_after_ms(), 0u) << "BUSY came without a backoff hint";
  }
  first.join();
  EXPECT_TRUE(shed) << "over-budget request was buffered, not shed";
  EXPECT_GE(server.stats().admission_bytes_rejected, 1u);

  // With the budget free again, the same request is admitted.  The
  // release happens just *after* the first response is sent
  // (job_finished), so an instant resubmit can race it by microseconds
  // -- a real client retries, and so do we.
  net::EncodeResponse response;
  ASSERT_TRUE(wait_for([&] {
    try {
      response = b.encode(request);
      return true;
    } catch (const RemoteError&) {
      return false;
    }
  }));
  EXPECT_FALSE(response.container.empty());
  server.drain();
}

TEST(NetServer, StalledHalfFrameSessionIsTornDown) {
  ServerOptions options;
  options.read_stall_timeout = 100ms;
  Server server(options);
  server.start();

  RawConn conn(server.port());
  ASSERT_TRUE(conn.connected());
  // Ten bytes of a 36-byte header, then silence: a slowloris hold.
  conn.send(std::vector<std::uint8_t>(10, 0x42));
  ASSERT_TRUE(wait_for([&] { return server.stats().stalled_sessions >= 1; }))
      << "stalled session was never torn down";
  bool closed = false;
  (void)conn.recv_until_close(&closed);
  EXPECT_TRUE(closed);

  // An honest client on a fresh connection is unaffected.
  Client client(client_options(server));
  client.ping();
  server.drain();
}

TEST(NetServer, ClientRetriesRideOutSaturation) {
  // One worker, one queue slot, every job stalled: bursts of three
  // concurrent encodes guarantee BUSY rejections, and clients configured
  // to retry must all converge to success without surfacing one.
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.debug_stall = 150ms;
  Server server(options);
  server.start();

  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&] {
      ClientOptions copts = client_options(server);
      copts.max_retries = 20;
      copts.retry_backoff = 25ms;
      Client client(copts);
      const auto response = client.encode(small_encode_request());
      if (!response.container.empty()) ok.fetch_add(1);
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(ok.load(), 3);
  server.drain();
}

TEST(NetServer, TokenedEncodeReplaysAcrossReconnect) {
  const fs::path dir = fs::temp_directory_path() / "rmpd_dedup_test" /
                       std::to_string(::getpid());
  fs::remove_all(dir.parent_path());
  ServerOptions options;
  options.output_dir = dir;
  Server server(options);
  server.start();

  auto request = small_encode_request();
  request.store = net::StoreMode::kSequence;
  request.store_name = "steps.rmps";
  request.request_token = 0xD00DFEEDu;

  net::EncodeResponse first;
  {
    Client client(client_options(server));
    first = client.encode(request);
    EXPECT_TRUE(first.stored);
  }
  // A new connection retrying the same token gets the original outcome
  // replayed -- not a second append.
  Client retry_client(client_options(server));
  const auto second = retry_client.encode(request);
  EXPECT_TRUE(second.stored);
  EXPECT_EQ(second.stored_bytes, first.stored_bytes);
  EXPECT_EQ(second.stored_path, first.stored_path);
  const auto stats = retry_client.stats();
  EXPECT_GE(stats.dedup_hits, 1u);
  EXPECT_GE(stats.dedup_entries, 1u);

  server.drain();
  io::SequenceReader reader(dir / "steps.rmps");
  EXPECT_EQ(reader.step_count(), 1u)
      << "retried token double-appended";
  fs::remove_all(dir.parent_path());
}

TEST(NetServer, RecoversCrashedStoreAndReplaysTokensAcrossRestart) {
  const fs::path dir = fs::temp_directory_path() / "rmpd_recover_test" /
                       std::to_string(::getpid());
  fs::remove_all(dir.parent_path());
  fs::create_directories(dir);

  // A crashed daemon's disk state, built through the same io layer the
  // server uses: one committed sequence step whose intent is in the
  // request log, journal never published, nothing cleaned up.
  constexpr std::uint64_t kTokenApplied = 0xFEEDFACEu;
  {
    io::Container step;
    step.method = "crashed_step";
    step.nx = 4;
    step.add("data", std::vector<std::uint8_t>(40, 0x7E));
    auto log = io::RequestLog::open(dir / "run.rmps", /*fresh=*/true);
    io::SequenceWriter writer(dir / "run.rmps");
    log.record(kTokenApplied, 0);
    writer.append(step);
    // Abandoned: destructors leave a resumable journal + intent log.
  }
  ASSERT_TRUE(fs::exists(dir / "run.rmps.part"));

  ServerOptions options;
  options.output_dir = dir;
  Server server(options);  // recover_on_start is the default
  server.start();
  EXPECT_EQ(server.stats().recovery_journals_resumed, 1u);
  EXPECT_EQ(server.stats().recovery_steps_recovered, 1u);

  Client client(client_options(server));
  auto request = small_encode_request();
  request.store = net::StoreMode::kSequence;
  request.store_name = "run.rmps";
  request.request_token = kTokenApplied;
  // The retry of the pre-crash request replays: applied exactly once.
  const auto replayed = client.encode(request);
  EXPECT_TRUE(replayed.stored);
  EXPECT_GE(client.stats().dedup_hits, 1u);

  // A fresh token appends for real, resuming the recovered journal.
  request.request_token = 0xF0E1D2C3u;
  const auto appended = client.encode(request);
  EXPECT_TRUE(appended.stored);

  server.drain();
  io::SequenceReader reader(dir / "run.rmps");
  EXPECT_EQ(reader.step_count(), 2u)
      << "recovered sequence lost or duplicated a step";
  fs::remove_all(dir.parent_path());
}

TEST(NetServer, ScrubRpcQuarantinesGarbageFromTheStore) {
  const fs::path dir = fs::temp_directory_path() / "rmpd_scrub_test" /
                       std::to_string(::getpid());
  fs::remove_all(dir.parent_path());
  ServerOptions options;
  options.output_dir = dir;
  Server server(options);
  server.start();

  // Plant an unreadable archive after startup recovery already ran.
  {
    std::ofstream out(dir / "junk.rmp", std::ios::binary);
    const std::vector<char> garbage(128, '\x5A');
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }

  Client client(client_options(server));
  const auto report = client.scrub();
  EXPECT_GE(report.files_checked, 1u);
  EXPECT_EQ(report.files_quarantined, 1u);
  EXPECT_FALSE(fs::exists(dir / "junk.rmp"));
  EXPECT_TRUE(fs::exists(io::quarantine_dir(dir) / "junk.rmp"));
  EXPECT_TRUE(fs::exists(io::quarantine_manifest_path(dir)));

  // A second pass over the clean store is a no-op, and the pass counter
  // advances.
  const auto again = client.scrub();
  EXPECT_EQ(again.files_quarantined, 0u);
  EXPECT_GE(client.stats().scrub_passes, 2u);
  server.drain();
  fs::remove_all(dir.parent_path());
}

TEST(NetServer, ClientReconnectsAcrossServerRestart) {
  const fs::path dir = fs::temp_directory_path() / "rmpd_restart_test" /
                       std::to_string(::getpid());
  fs::remove_all(dir.parent_path());
  ServerOptions options;
  options.output_dir = dir;
  auto first = std::make_unique<Server>(options);
  first->start();
  const std::uint16_t port = first->port();

  ClientOptions copts;
  copts.port = port;
  copts.max_retries = 30;
  copts.retry_backoff = 50ms;
  Client client(copts);
  client.ping();

  // Restart the daemon on the same port while the client holds its
  // (now dead) connection.
  first->drain();
  first.reset();
  options.port = port;
  Server second(options);
  second.start();

  // The same logical client rides the retry loop onto the new
  // incarnation -- reconnect, re-send, succeed.
  auto request = small_encode_request();
  request.store = net::StoreMode::kSequence;
  request.store_name = "again.rmps";
  request.request_token = 0xAB12CD34u;
  const auto response = client.encode(request);
  EXPECT_TRUE(response.stored);
  second.drain();
  EXPECT_TRUE(fs::exists(dir / "again.rmps"));
  fs::remove_all(dir.parent_path());
}

}  // namespace
