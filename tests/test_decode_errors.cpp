// Negative-path sweep: every preconditioner must reject malformed
// containers with a clean exception -- missing sections, wrong method
// dispatch, mutilated metadata -- instead of crashing or fabricating
// output.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/factory.hpp"
#include "core/pipeline.hpp"

namespace rmp::core {
namespace {

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_zfp_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_zfp_delta();
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

sim::Field field3d() {
  sim::Field f(8, 8, 8);
  for (std::size_t n = 0; n < f.size(); ++n) {
    f.flat()[n] = std::sin(0.1 * static_cast<double>(n));
  }
  return f;
}

class DecodeErrors : public ::testing::TestWithParam<std::string> {};

TEST_P(DecodeErrors, EmptyContainerThrows) {
  Codecs codecs;
  const auto preconditioner = make_preconditioner(GetParam());
  io::Container empty;
  empty.method = GetParam();
  empty.nx = 8;
  empty.ny = 8;
  empty.nz = 8;
  EXPECT_ANY_THROW(preconditioner->decode(empty, codecs.pair(), nullptr));
}

// one-base's and wavelet's "meta" sections are provenance only: decode
// reconstructs without them (one-base's mid index is implicit; wavelet
// defaults to the 2D transform).  Every other section is load-bearing.
bool section_is_advisory(const std::string& method,
                         const std::string& section) {
  return section == "meta" && (method == "one-base" || method == "wavelet");
}

TEST_P(DecodeErrors, DroppingAnySectionThrows) {
  Codecs codecs;
  const auto preconditioner = make_preconditioner(GetParam());
  const io::Container complete =
      preconditioner->encode(field3d(), codecs.pair(), nullptr);

  for (std::size_t drop = 0; drop < complete.sections.size(); ++drop) {
    if (section_is_advisory(GetParam(), complete.sections[drop].name)) {
      continue;
    }
    io::Container mutilated = complete;
    mutilated.sections.erase(mutilated.sections.begin() +
                             static_cast<std::ptrdiff_t>(drop));
    EXPECT_ANY_THROW(preconditioner->decode(mutilated, codecs.pair(), nullptr))
        << "dropped section " << complete.sections[drop].name;
  }
}

TEST_P(DecodeErrors, CorruptedSectionBytesThrow) {
  Codecs codecs;
  const auto preconditioner = make_preconditioner(GetParam());
  io::Container container =
      preconditioner->encode(field3d(), codecs.pair(), nullptr);

  for (auto& section : container.sections) {
    if (section.bytes.size() < 8) continue;
    if (section_is_advisory(GetParam(), section.name)) continue;
    auto saved = section.bytes;
    // Truncate the section hard: decoders must notice.
    section.bytes.resize(4);
    EXPECT_ANY_THROW(preconditioner->decode(container, codecs.pair(), nullptr))
        << "truncated section " << section.name;
    section.bytes = saved;
  }
}

TEST_P(DecodeErrors, RoundTripStillWorksAfterNegativeTests) {
  // Guard against the negative tests hiding a broken happy path.
  Codecs codecs;
  const auto preconditioner = make_preconditioner(GetParam());
  const sim::Field f = field3d();
  const auto container = preconditioner->encode(f, codecs.pair(), nullptr);
  const auto decoded = preconditioner->decode(container, codecs.pair(), nullptr);
  EXPECT_EQ(decoded.size(), f.size());
}

INSTANTIATE_TEST_SUITE_P(AllMethods, DecodeErrors,
                         ::testing::Values("identity", "one-base",
                                           "multi-base", "duomodel", "pca",
                                           "svd", "wavelet", "pca-part",
                                           "tucker"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(DecodeErrors, ReconstructRejectsUnknownMethod) {
  Codecs codecs;
  io::Container container;
  container.method = "martian";
  EXPECT_THROW(reconstruct(container, codecs.pair()), std::invalid_argument);
}

}  // namespace
}  // namespace rmp::core
