// Parameterized property sweeps for the linear algebra kernels: the
// eigensolver and SVD must satisfy their defining identities across a
// grid of shapes and seeds, not just on hand-picked matrices.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <tuple>

#include "la/covariance.hpp"
#include "la/eigen.hpp"
#include "la/svd.hpp"

namespace rmp::la {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  Matrix m(rows, cols);
  for (double& v : m.flat()) v = dist(rng);
  return m;
}

Matrix symmetrize(const Matrix& m) {
  Matrix s(m.rows(), m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.rows(); ++j) {
      s(i, j) = 0.5 * (m(i, j) + m(j, i));
    }
  }
  return s;
}

class EigenSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(EigenSweep, DecompositionIdentities) {
  const auto& [n, seed] = GetParam();
  const Matrix a = symmetrize(random_matrix(n, n, seed));
  const auto eig = jacobi_eigen(a);

  // Descending eigenvalues.
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_GE(eig.values[i - 1], eig.values[i] - 1e-12);
  }
  // Orthonormal eigenvectors.
  const Matrix vtv = eig.vectors.transposed() * eig.vectors;
  EXPECT_LT(Matrix::max_abs_diff(vtv, Matrix::identity(n)), 1e-9);
  // A v_i = lambda_i v_i.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double av = 0;
      for (std::size_t k = 0; k < n; ++k) av += a(i, k) * eig.vectors(k, j);
      EXPECT_NEAR(av, eig.values[j] * eig.vectors(i, j), 1e-8);
    }
  }
  // Trace preserved.
  double trace = 0, sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += a(i, i);
    sum += eig.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-9 * std::max(1.0, std::fabs(trace)));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EigenSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13, 21),
                       ::testing::Values(7u, 77u)));

class SvdSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, unsigned>> {};

TEST_P(SvdSweep, DecompositionIdentities) {
  const auto& [rows, cols, seed] = GetParam();
  const Matrix a = random_matrix(rows, cols, seed);
  const auto svd = jacobi_svd(a);

  // Full reconstruction.
  EXPECT_LT(Matrix::max_abs_diff(svd_reconstruct(svd), a), 1e-9);
  // Non-negative, descending singular values.
  for (std::size_t i = 0; i < svd.sigma.size(); ++i) {
    EXPECT_GE(svd.sigma[i], 0.0);
    if (i > 0) EXPECT_GE(svd.sigma[i - 1], svd.sigma[i] - 1e-12);
  }
  // Frobenius norm preserved: ||A||_F^2 == sum sigma_i^2.
  double sigma2 = 0;
  for (double s : svd.sigma) sigma2 += s * s;
  EXPECT_NEAR(a.frobenius_norm() * a.frobenius_norm(), sigma2,
              1e-8 * std::max(1.0, sigma2));
  // V orthogonal.
  const Matrix vtv = svd.v.transposed() * svd.v;
  EXPECT_LT(Matrix::max_abs_diff(vtv, Matrix::identity(svd.v.rows())), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 16, 40),
                       ::testing::Values(1, 2, 5, 12),
                       ::testing::Values(3u, 33u)));

class CovarianceSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(CovarianceSweep, PositiveSemiDefiniteAndSymmetric) {
  const auto& [rows, cols] = GetParam();
  const Matrix a = random_matrix(rows, cols, 11);
  const Matrix c = covariance(a);
  ASSERT_EQ(c.rows(), cols);
  ASSERT_EQ(c.cols(), cols);
  for (std::size_t i = 0; i < cols; ++i) {
    EXPECT_GE(c(i, i), -1e-12);  // variances are non-negative
    for (std::size_t j = 0; j < cols; ++j) {
      EXPECT_NEAR(c(i, j), c(j, i), 1e-12);
    }
  }
  // All eigenvalues >= 0 (PSD).
  const auto eig = jacobi_eigen(c);
  for (double v : eig.values) EXPECT_GE(v, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CovarianceSweep,
                         ::testing::Combine(::testing::Values(1, 2, 10, 64),
                                            ::testing::Values(1, 3, 9)));

}  // namespace
}  // namespace rmp::la
