// Parameter-sweep property tests for the preconditioner knobs: each
// option must trade storage against fidelity in the direction its
// documentation promises.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/factory.hpp"
#include "core/partitioned.hpp"
#include "core/pca.hpp"
#include "core/projection.hpp"
#include "core/svd_precond.hpp"
#include "core/wavelet_precond.hpp"
#include "sim/heat.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_zfp_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_zfp_delta();
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

const sim::Field& test_field() {
  static const sim::Field field = [] {
    sim::HeatConfig config;
    config.n = 16;
    config.steps = 120;
    config.hot_center_z = 0.6;  // break symmetry so ranks are non-trivial
    return sim::heat3d_run(config);
  }();
  return field;
}

class PcaTargetSweep : public ::testing::TestWithParam<double> {};

TEST_P(PcaTargetSweep, HigherTargetNeverShrinksReducedRep) {
  Codecs codecs;
  EncodeStats low, high;
  PcaPreconditioner({GetParam(), false}).encode(test_field(), codecs.pair(),
                                                &low);
  PcaPreconditioner({std::min(1.0, GetParam() + 0.04), false})
      .encode(test_field(), codecs.pair(), &high);
  EXPECT_GE(high.reduced_bytes + 64, low.reduced_bytes);
}

INSTANTIATE_TEST_SUITE_P(Targets, PcaTargetSweep,
                         ::testing::Values(0.5, 0.8, 0.9, 0.95));

class SvdTargetSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvdTargetSweep, RoundTripAtEveryTarget) {
  Codecs codecs;
  SvdPreconditioner preconditioner({GetParam(), false});
  const auto container =
      preconditioner.encode(test_field(), codecs.pair(), nullptr);
  const auto decoded =
      preconditioner.decode(container, codecs.pair(), nullptr);
  // Reconstruction is always exact up to codec error: the delta absorbs
  // whatever the truncated SVD misses.
  EXPECT_LT(stats::rmse(test_field().flat(), decoded.flat()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Targets, SvdTargetSweep,
                         ::testing::Values(0.3, 0.6, 0.9, 0.99));

class MultiBaseSlabSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiBaseSlabSweep, MoreSlabsStoreMoreReduceDeltaError) {
  Codecs codecs;
  EncodeStats one, many;
  MultiBasePreconditioner(1).encode(test_field(), codecs.pair(), &one);
  MultiBasePreconditioner(GetParam()).encode(test_field(), codecs.pair(),
                                             &many);
  if (GetParam() > 1) {
    EXPECT_GT(many.reduced_bytes, one.reduced_bytes);
  }
  // Round trip stays valid at every slab count.
  MultiBasePreconditioner preconditioner(GetParam());
  const auto container =
      preconditioner.encode(test_field(), codecs.pair(), nullptr);
  const auto decoded =
      preconditioner.decode(container, codecs.pair(), nullptr);
  EXPECT_LT(stats::rmse(test_field().flat(), decoded.flat()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Slabs, MultiBaseSlabSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

class DuoFactorSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DuoFactorSweep, LargerFactorStoresSmallerReducedModel) {
  Codecs codecs;
  EncodeStats coarse, fine;
  DuoModelPreconditioner(GetParam(), true)
      .encode(test_field(), codecs.pair(), &coarse);
  DuoModelPreconditioner(2, true).encode(test_field(), codecs.pair(), &fine);
  if (GetParam() > 2) {
    EXPECT_LE(coarse.reduced_bytes, fine.reduced_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, DuoFactorSweep,
                         ::testing::Values(2, 4, 8));

class WaveletThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(WaveletThetaSweep, LargerThresholdSparsifiesReducedRep) {
  Codecs codecs;
  EncodeStats tight, loose;
  WaveletPreconditioner({0.005, false})
      .encode(test_field(), codecs.pair(), &tight);
  WaveletPreconditioner({GetParam(), false})
      .encode(test_field(), codecs.pair(), &loose);
  EXPECT_LE(loose.reduced_bytes, tight.reduced_bytes + 64);
}

INSTANTIATE_TEST_SUITE_P(Thetas, WaveletThetaSweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.25));

class PartitionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionSweep, EveryPartitionCountRoundTrips) {
  Codecs codecs;
  PartitionedPcaPreconditioner preconditioner({GetParam(), 0.95});
  const auto container =
      preconditioner.encode(test_field(), codecs.pair(), nullptr);
  const auto decoded =
      preconditioner.decode(container, codecs.pair(), nullptr);
  EXPECT_LT(stats::rmse(test_field().flat(), decoded.flat()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 64));

}  // namespace
}  // namespace rmp::core
