// Deeper physical-invariant tests for the simulation substrate: momentum
// conservation in MD, diffusion self-similarity in Heat3d, wave-equation
// reflection symmetry, and determinism guarantees the dataset registry
// depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/datasets.hpp"
#include "sim/heat.hpp"
#include "sim/md.hpp"
#include "sim/wave.hpp"

namespace rmp::sim {
namespace {

TEST(MdInvariants, MomentumNearZeroWithoutBias) {
  // Pair forces obey Newton's third law and the initial drift is removed,
  // so total momentum stays ~0 between thermostat rescalings (rescaling
  // preserves p = 0 exactly).
  MdConfig config;
  config.atoms = 128;
  config.steps = 40;
  config.thermostat_interval = 0;  // no rescaling: pure NVE
  MdSimulation simulation(config);
  simulation.run(config.steps);
  double px = 0, py = 0, pz = 0;
  const auto& v = simulation.velocities();
  for (std::size_t a = 0; a < config.atoms; ++a) {
    px += v[a * 3 + 0];
    py += v[a * 3 + 1];
    pz += v[a * 3 + 2];
  }
  EXPECT_NEAR(px, 0.0, 1e-8);
  EXPECT_NEAR(py, 0.0, 1e-8);
  EXPECT_NEAR(pz, 0.0, 1e-8);
}

TEST(MdInvariants, UmbrellaBreaksMomentumButStaysFinite) {
  MdConfig config;
  config.atoms = 128;
  config.steps = 40;
  config.umbrella = true;
  MdSimulation simulation(config);
  simulation.run(config.steps);
  for (double x : simulation.velocities()) {
    ASSERT_TRUE(std::isfinite(x));
  }
}

TEST(MdInvariants, EnergyDriftBoundedInNve) {
  MdConfig config;
  config.atoms = 128;
  config.steps = 100;
  config.dt = 0.002;
  config.thermostat_interval = 0;
  MdSimulation simulation(config);
  const double e0 = simulation.potential_energy() +
                    1.5 * static_cast<double>(config.atoms) *
                        simulation.temperature();
  simulation.run(config.steps);
  const double e1 = simulation.potential_energy() +
                    1.5 * static_cast<double>(config.atoms) *
                        simulation.temperature();
  // Velocity Verlet conserves energy to O(dt^2); allow a loose 20%.
  EXPECT_NEAR(e1, e0, std::fabs(e0) * 0.2 + 10.0);
}

TEST(HeatInvariants, SymmetricInXAndY) {
  // The initial condition is centered in x and y regardless of the z
  // offset, so those reflections remain exact symmetries.
  HeatConfig config;
  config.n = 16;
  config.steps = 60;
  config.hot_center_z = 0.65;
  const Field u = heat3d_run(config);
  const std::size_t n = config.n;
  double asym = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        asym = std::max(asym,
                        std::fabs(u.at(i, j, k) - u.at(n - 1 - i, j, k)));
        asym = std::max(asym,
                        std::fabs(u.at(i, j, k) - u.at(i, n - 1 - j, k)));
      }
    }
  }
  EXPECT_LT(asym, 1e-9);
}

TEST(HeatInvariants, FinerGridConvergesTowardSameState) {
  // Halving h at matched physical time must change the solution only by
  // the discretization error, so coarse-vs-fine (sampled) differences
  // shrink with resolution.
  HeatConfig coarse;
  coarse.n = 12;
  coarse.steps = 40;
  const double horizon =
      static_cast<double>(coarse.steps) * coarse.cfl_safety *
      heat_stable_dt(1.0 / static_cast<double>(coarse.n - 1), 3, 1.0);

  HeatConfig fine = coarse;
  fine.n = 23;  // h/2 (matching grid points at even indices)
  const double fine_dt = fine.cfl_safety *
                         heat_stable_dt(1.0 / static_cast<double>(fine.n - 1),
                                        3, 1.0);
  fine.steps = static_cast<std::size_t>(std::lround(horizon / fine_dt));

  const Field uc = heat3d_run(coarse);
  const Field uf = heat3d_run(fine);
  double diff = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < coarse.n; ++i) {
    for (std::size_t j = 0; j < coarse.n; ++j) {
      for (std::size_t k = 0; k < coarse.n; ++k) {
        diff += std::fabs(uf.at(2 * i, 2 * j, 2 * k) - uc.at(i, j, k));
        scale += std::fabs(uc.at(i, j, k));
      }
    }
  }
  EXPECT_LT(diff, scale * 0.5 + 1e-9);  // same solution family
}

TEST(WaveInvariants, PulseReflectsOffFixedEnd) {
  // A fixed end inverts the pulse: after traveling to the boundary and
  // back, the displacement near the starting point has opposite sign.
  WaveConfig config;
  config.n = 400;
  config.cfl = 1.0;  // exact propagation on the grid
  config.pulse_center = 0.5;
  config.pulse_width = 0.03;
  // Travel 0.5 to the right end and 0.5 back: distance 1.0 = n-1 steps.
  config.steps = config.n - 1;
  const Field u = wave1d_run(config);
  // The split pulse (half left, half right) returns inverted at center.
  const std::size_t center = config.n / 2;
  EXPECT_LT(u.at(center), -0.2);
}

TEST(RegistryInvariants, DatasetsAreDeterministic) {
  for (DatasetId id : {DatasetId::kAstro, DatasetId::kFish,
                       DatasetId::kUmbrella, DatasetId::kSedovPres}) {
    const auto a = make_dataset(id, 0.4);
    const auto b = make_dataset(id, 0.4);
    ASSERT_EQ(a.full.size(), b.full.size());
    for (std::size_t n = 0; n < a.full.size(); ++n) {
      ASSERT_EQ(a.full.flat()[n], b.full.flat()[n]) << a.name;
    }
  }
}

TEST(RegistryInvariants, ScaleGrowsProblemSize) {
  const auto small = make_dataset(DatasetId::kHeat3d, 0.4);
  const auto large = make_dataset(DatasetId::kHeat3d, 0.7);
  EXPECT_LT(small.full.size(), large.full.size());
}

}  // namespace
}  // namespace rmp::sim
