// Observability subsystem: span nesting, cross-thread aggregation, JSON
// emission + schema validation, and the determinism guarantee (archives
// are byte-identical with recording on and off).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "compress/factory.hpp"
#include "core/guard.hpp"
#include "core/pipeline.hpp"
#include "io/container.hpp"
#include "obs/obs.hpp"
#include "sim/field.hpp"

namespace rmp {
namespace {

/// Every test runs against a clean, enabled registry and restores the
/// enabled state afterwards so ordering does not matter.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::Registry::global().reset();
  }
  void TearDown() override {
    obs::Registry::global().reset();
    obs::set_enabled(true);
  }
};

sim::Field make_test_field(std::size_t n = 16) {
  sim::Field field(n, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        field.at(i, j, k) = std::sin(0.3 * static_cast<double>(i)) +
                            0.5 * std::cos(0.2 * static_cast<double>(j + k));
      }
    }
  }
  return field;
}

const obs::SpanSnapshot* find_span(const std::vector<obs::SpanSnapshot>& spans,
                                   const std::string& name) {
  for (const auto& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Spans

TEST_F(ObsTest, ScopedSpanRecordsOnce) {
  { const obs::ScopedSpan span("unit-test/solo"); }
  const auto spans = obs::Registry::global().spans();
  const auto* solo = find_span(spans, "unit-test/solo");
  ASSERT_NE(solo, nullptr);
  EXPECT_EQ(solo->count, 1u);
  EXPECT_GE(solo->total_seconds, 0.0);
  EXPECT_LE(solo->min_seconds, solo->max_seconds);
}

TEST_F(ObsTest, NestedSpansBuildPaths) {
  {
    const obs::ScopedSpan outer("outer");
    EXPECT_EQ(outer.path(), "outer");
    {
      const obs::ScopedSpan inner("inner");
      EXPECT_EQ(inner.path(), "outer/inner");
      const obs::ScopedSpan deepest("deepest");
      EXPECT_EQ(deepest.path(), "outer/inner/deepest");
    }
    // The nesting stack pops correctly: a sibling after `inner` closes
    // re-roots under "outer", not under the dead sibling.
    const obs::ScopedSpan sibling("sibling");
    EXPECT_EQ(sibling.path(), "outer/sibling");
  }
  const auto spans = obs::Registry::global().spans();
  EXPECT_NE(find_span(spans, "outer"), nullptr);
  EXPECT_NE(find_span(spans, "outer/inner"), nullptr);
  EXPECT_NE(find_span(spans, "outer/inner/deepest"), nullptr);
  EXPECT_NE(find_span(spans, "outer/sibling"), nullptr);
}

TEST_F(ObsTest, SpansOnOtherThreadsRootIndependently) {
  const obs::ScopedSpan outer("main-root");
  std::thread worker([] {
    const obs::ScopedSpan span("worker-root");
    EXPECT_EQ(span.path(), "worker-root");  // not nested under main-root
  });
  worker.join();
  const auto spans = obs::Registry::global().spans();
  EXPECT_NE(find_span(spans, "worker-root"), nullptr);
  EXPECT_EQ(find_span(spans, "main-root/worker-root"), nullptr);
}

TEST_F(ObsTest, DisabledSpanStillTimesButRecordsNothing) {
  obs::set_enabled(false);
  {
    const obs::ScopedSpan span("ghost");
    EXPECT_TRUE(span.path().empty());
    EXPECT_GE(span.elapsed_seconds(), 0.0);
  }
  obs::set_enabled(true);
  EXPECT_TRUE(obs::Registry::global().spans().empty());
}

// ---------------------------------------------------------------------------
// Counters / gauges / histograms

TEST_F(ObsTest, CountersAggregateAcrossThreads) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::uint64_t n = 0; n < kPerThread; ++n) {
        obs::count("test.cross_thread");
      }
      obs::count("test.bulk", 5);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(obs::Registry::global().counter_value("test.cross_thread"),
            kThreads * kPerThread);
  EXPECT_EQ(obs::Registry::global().counter_value("test.bulk"),
            kThreads * 5u);
}

TEST_F(ObsTest, GaugeKeepsMaximum) {
  obs::gauge_max("test.depth", 3);
  obs::gauge_max("test.depth", 9);
  obs::gauge_max("test.depth", 4);
  const auto gauges = obs::Registry::global().gauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_EQ(gauges[0].name, "test.depth");
  EXPECT_EQ(gauges[0].value, 9u);
}

TEST_F(ObsTest, HistogramBucketsAndMoments) {
  obs::observe("test.latency", 0.5e-6);   // bucket 0: < 1us
  obs::observe("test.latency", 3e-6);     // ~2-4us
  obs::observe("test.latency", 1e-3);     // ~1ms
  const auto histograms = obs::Registry::global().histograms();
  ASSERT_EQ(histograms.size(), 1u);
  const auto& h = histograms[0];
  EXPECT_EQ(h.count, 3u);
  EXPECT_NEAR(h.sum, 0.5e-6 + 3e-6 + 1e-3, 1e-12);
  EXPECT_NEAR(h.min, 0.5e-6, 1e-12);
  EXPECT_NEAR(h.max, 1e-3, 1e-12);
  std::uint64_t total = 0;
  for (const auto b : h.buckets) total += b;
  EXPECT_EQ(total, 3u);
  ASSERT_FALSE(h.buckets.empty());
  EXPECT_EQ(h.buckets[0], 1u);  // the sub-microsecond observation
}

TEST_F(ObsTest, DisabledCountersAreNoOps) {
  obs::set_enabled(false);
  obs::count("test.ghost");
  obs::gauge_max("test.ghost_gauge", 7);
  obs::observe("test.ghost_hist", 1.0);
  obs::set_enabled(true);
  EXPECT_EQ(obs::Registry::global().counter_value("test.ghost"), 0u);
  EXPECT_TRUE(obs::Registry::global().gauges().empty());
  EXPECT_TRUE(obs::Registry::global().histograms().empty());
}

// ---------------------------------------------------------------------------
// JSON round trip

TEST_F(ObsTest, JsonRoundTripValidatesAndPreservesValues) {
  obs::count("test.bytes", 12345);
  obs::gauge_max("test.peak", 42);
  obs::observe("test.hist", 2e-6);
  { const obs::ScopedSpan span("emit/step"); }

  const std::string json = obs::Registry::global().to_json();
  const auto result = obs::validate_stats_json(json);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.schema, "rmp-obs-v1");

  const auto doc = obs::json_parse(json);
  const auto* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* bytes = counters->find("test.bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_EQ(bytes->number, 12345.0);
  const auto* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  const auto* step = spans->find("emit/step");
  ASSERT_NE(step, nullptr);
  ASSERT_NE(step->find("count"), nullptr);
  EXPECT_EQ(step->find("count")->number, 1.0);
}

TEST_F(ObsTest, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(obs::validate_stats_json("not json at all").ok);
  EXPECT_FALSE(obs::validate_stats_json("{}").ok);
  EXPECT_FALSE(
      obs::validate_stats_json("{\"schema\": \"rmp-unknown-v9\"}").ok);
  // A bench document missing its runs must fail too.
  EXPECT_FALSE(obs::validate_stats_json(
                   "{\"schema\": \"rmp-bench-core-v1\", \"scale\": 1}")
                   .ok);
}

// The self-healing counters (rmpd recovery/scrub/dedup/admission) are
// part of the rmp-obs-v1 surface: they must survive a JSON round trip
// and validate, and the validator must reject counter names outside the
// dot-separated token grammar they follow.
TEST_F(ObsTest, SelfHealingCountersRoundTripAndValidate) {
  obs::count("net.dedup.hits", 3);
  obs::count("net.dedup.evictions");
  obs::count("scrub.sections_checked", 128);
  obs::count("scrub.sections_repaired", 2);
  obs::count("scrub.files_quarantined");
  obs::count("admission.bytes_rejected", 1 << 20);

  const std::string json = obs::Registry::global().to_json();
  const auto result = obs::validate_stats_json(json);
  EXPECT_TRUE(result.ok) << result.error;

  const auto doc = obs::json_parse(json);
  const auto* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  for (const auto& [name, value] :
       {std::pair<const char*, double>{"net.dedup.hits", 3.0},
        {"scrub.sections_checked", 128.0},
        {"admission.bytes_rejected", double{1 << 20}}}) {
    const auto* counter = counters->find(name);
    ASSERT_NE(counter, nullptr) << name;
    EXPECT_EQ(counter->number, value) << name;
  }
}

TEST_F(ObsTest, ValidatorRejectsMalformedCounterNames) {
  auto doc_with_counter = [](const std::string& name) {
    return "{\"schema\": \"rmp-obs-v1\", \"counters\": {\"" + name +
           "\": 1}, \"gauges\": {}, \"spans\": {}, \"histograms\": {}}";
  };
  EXPECT_TRUE(obs::validate_stats_json(doc_with_counter("net.dedup.hits")).ok);
  EXPECT_TRUE(
      obs::validate_stats_json(doc_with_counter("scrub.pass_failures")).ok);
  EXPECT_FALSE(obs::validate_stats_json(doc_with_counter("Net.Dedup")).ok);
  EXPECT_FALSE(obs::validate_stats_json(doc_with_counter(".leading")).ok);
  EXPECT_FALSE(obs::validate_stats_json(doc_with_counter("trailing.")).ok);
  EXPECT_FALSE(obs::validate_stats_json(doc_with_counter("twin..dots")).ok);
  EXPECT_FALSE(obs::validate_stats_json(doc_with_counter("has space")).ok);
}

TEST_F(ObsTest, JsonParserRejectsTrailingGarbage) {
  EXPECT_THROW(obs::json_parse("{\"a\": 1} extra"), std::runtime_error);
  EXPECT_THROW(obs::json_parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(obs::json_parse(""), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Determinism: instrumentation must never change the produced bytes

TEST_F(ObsTest, ArchivesAreByteIdenticalWithStatsOnAndOff) {
  const sim::Field field = make_test_field();
  const auto reduced = compress::make_sz_original();
  const auto delta = compress::make_sz_delta();
  const core::CodecPair pair{reduced.get(), delta.get()};

  auto encode_bytes = [&](const std::string& method) {
    const auto preconditioner = core::make_preconditioner(method);
    core::EncodeStats stats;
    return io::serialize(preconditioner->encode(field, pair, &stats));
  };

  for (const std::string method : {"pca", "one-base", "wavelet"}) {
    obs::set_enabled(true);
    obs::Registry::global().reset();
    const auto with_stats = encode_bytes(method);
    obs::set_enabled(false);
    const auto without_stats = encode_bytes(method);
    obs::set_enabled(true);
    EXPECT_EQ(with_stats, without_stats) << "method " << method;
  }
}

TEST_F(ObsTest, GuardedEncodeRecordsStageSpans) {
  sim::Field field = make_test_field(8);
  field.at(1, 1, 1) = std::nan("");
  const auto reduced = compress::make_sz_original();
  const auto delta = compress::make_sz_delta();
  const core::CodecPair pair{reduced.get(), delta.get()};

  core::GuardOptions options;
  options.method = "pca";
  const auto result = core::guarded_encode(field, pair, options);
  EXPECT_EQ(result.provenance.masked_cells, 1u);

  const auto spans = obs::Registry::global().spans();
  EXPECT_NE(find_span(spans, "audit"), nullptr);
  EXPECT_NE(find_span(spans, "mask"), nullptr);
  EXPECT_NE(find_span(spans, "precondition"), nullptr);
  EXPECT_NE(find_span(spans, "verify"), nullptr);
  EXPECT_EQ(obs::Registry::global().counter_value("guard.masked_cells"), 1u);
}

TEST_F(ObsTest, PipelineRecordsEncodeDecodeSpansAndByteCounters) {
  const sim::Field field = make_test_field();
  const auto reduced = compress::make_sz_original();
  const auto delta = compress::make_sz_delta();
  const core::CodecPair pair{reduced.get(), delta.get()};
  const auto preconditioner = core::make_preconditioner("pca");

  const auto result = core::run_pipeline(*preconditioner, field, pair);
  auto& registry = obs::Registry::global();
  EXPECT_EQ(registry.counter_value("pipeline.encodes"), 1u);
  EXPECT_EQ(registry.counter_value("pipeline.decodes"), 1u);
  EXPECT_EQ(registry.counter_value("pipeline.bytes.original"),
            result.stats.original_bytes);
  EXPECT_EQ(registry.counter_value("pipeline.bytes.compressed"),
            result.stats.total_bytes);

  const auto spans = registry.spans();
  EXPECT_NE(find_span(spans, "pipeline/encode"), nullptr);
  EXPECT_NE(find_span(spans, "pipeline/decode"), nullptr);
  EXPECT_NE(find_span(spans, "pipeline/encode/precondition/pca"), nullptr);
  EXPECT_NE(find_span(
                spans,
                "pipeline/encode/precondition/pca/delta-compress"),
            nullptr);
}

}  // namespace
}  // namespace rmp
