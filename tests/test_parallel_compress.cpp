#include "core/parallel_compress.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "compress/factory.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

sim::Field wavy_field(std::size_t nx, std::size_t ny, std::size_t nz) {
  sim::Field f(nx, ny, nz);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t k = 0; k < nz; ++k) {
        f.at(i, j, k) = std::sin(0.2 * static_cast<double>(i)) +
                        std::cos(0.3 * static_cast<double>(j)) *
                            static_cast<double>(k + 1);
      }
    }
  }
  return f;
}

TEST(ParallelCompress, RoundTripLossless) {
  const auto codec = compress::make_fpc();
  const sim::Field f = wavy_field(8, 8, 16);
  const auto container = compress_field_parallel(f, *codec, {4, 2});
  const sim::Field decoded = decompress_field_parallel(container, *codec, 2);
  for (std::size_t n = 0; n < f.size(); ++n) {
    ASSERT_EQ(decoded.flat()[n], f.flat()[n]);
  }
}

TEST(ParallelCompress, RoundTripLossyWithinBound) {
  const auto codec = compress::make_zfp_original();
  const sim::Field f = wavy_field(12, 12, 12);
  const auto container = compress_field_parallel(f, *codec, {3, 2});
  const sim::Field decoded = decompress_field_parallel(container, *codec, 2);
  EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 1e-2);
}

TEST(ParallelCompress, SlabCountClampedToZ) {
  const auto codec = compress::make_fpc();
  const sim::Field f = wavy_field(4, 4, 3);
  const auto container = compress_field_parallel(f, *codec, {16, 2});
  // Only 3 slabs possible.
  EXPECT_NE(container.find("slab2"), nullptr);
  EXPECT_EQ(container.find("slab3"), nullptr);
  const sim::Field decoded = decompress_field_parallel(container, *codec, 2);
  for (std::size_t n = 0; n < f.size(); ++n) {
    ASSERT_EQ(decoded.flat()[n], f.flat()[n]);
  }
}

TEST(ParallelCompress, SingleSlabSingleThread) {
  const auto codec = compress::make_fpc();
  const sim::Field f = wavy_field(6, 6, 6);
  const auto container = compress_field_parallel(f, *codec, {1, 1});
  const sim::Field decoded = decompress_field_parallel(container, *codec, 1);
  for (std::size_t n = 0; n < f.size(); ++n) {
    ASSERT_EQ(decoded.flat()[n], f.flat()[n]);
  }
}

TEST(ParallelCompress, ThreadCountDoesNotChangeBytes) {
  const auto codec = compress::make_zfp_original();
  const sim::Field f = wavy_field(10, 10, 12);
  const auto c1 = compress_field_parallel(f, *codec, {4, 1});
  const auto c4 = compress_field_parallel(f, *codec, {4, 4});
  ASSERT_EQ(c1.sections.size(), c4.sections.size());
  for (std::size_t s = 0; s < c1.sections.size(); ++s) {
    EXPECT_EQ(c1.sections[s].bytes, c4.sections[s].bytes) << s;
  }
}

TEST(ParallelCompress, SlabCountMatchesRequest) {
  const auto codec = compress::make_fpc();
  const sim::Field f = wavy_field(6, 6, 12);
  const auto container = compress_field_parallel(f, *codec, {3, 1});
  EXPECT_EQ(slab_count(container), 3u);
}

TEST(ParallelCompress, RoiSlabMatchesFullDecode) {
  const auto codec = compress::make_fpc();
  const sim::Field f = wavy_field(6, 6, 13);  // uneven slabs
  const auto container = compress_field_parallel(f, *codec, {4, 2});
  const sim::Field full = decompress_field_parallel(container, *codec, 2);

  std::size_t covered = 0;
  for (std::size_t s = 0; s < slab_count(container); ++s) {
    const SlabView view = decompress_slab(container, *codec, s);
    for (std::size_t i = 0; i < f.nx(); ++i) {
      for (std::size_t j = 0; j < f.ny(); ++j) {
        for (std::size_t k = 0; k < view.field.nz(); ++k) {
          ASSERT_EQ(view.field.at(i, j, k),
                    full.at(i, j, view.z_offset + k));
        }
      }
    }
    covered += view.field.nz();
  }
  EXPECT_EQ(covered, f.nz());  // slabs tile the Z extent exactly
}

TEST(ParallelCompress, RoiRejectsBadIndex) {
  const auto codec = compress::make_fpc();
  const sim::Field f = wavy_field(4, 4, 8);
  const auto container = compress_field_parallel(f, *codec, {2, 1});
  EXPECT_THROW(decompress_slab(container, *codec, 2), std::out_of_range);
}

TEST(ParallelCompress, RejectsEmptyField) {
  const auto codec = compress::make_fpc();
  EXPECT_THROW(compress_field_parallel(sim::Field(), *codec, {2, 2}),
               std::invalid_argument);
}

TEST(ParallelCompress, DecompressRejectsMissingMeta) {
  const auto codec = compress::make_fpc();
  io::Container container;
  container.method = "parallel-slabs";
  EXPECT_THROW(decompress_field_parallel(container, *codec, 2),
               std::runtime_error);
}

}  // namespace
}  // namespace rmp::core
