#include "wavelet/haar.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

namespace rmp::wavelet {
namespace {

using rmp::la::Matrix;

std::vector<double> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

TEST(Haar, MaxLevels) {
  EXPECT_EQ(max_levels(1), 0u);
  EXPECT_EQ(max_levels(2), 1u);
  EXPECT_EQ(max_levels(4), 2u);
  EXPECT_EQ(max_levels(8), 3u);
  EXPECT_EQ(max_levels(9), 4u);  // ceil-halving: 9 -> 5 -> 3 -> 2 -> 1
}

TEST(Haar, KnownTwoPointTransform) {
  std::vector<double> v = {3.0, 1.0};
  haar_forward_1d(v);
  const double s = std::sqrt(2.0);
  EXPECT_NEAR(v[0], 4.0 / s, 1e-14);  // sum / sqrt2
  EXPECT_NEAR(v[1], 2.0 / s, 1e-14);  // diff / sqrt2
  haar_inverse_1d(v);
  EXPECT_NEAR(v[0], 3.0, 1e-14);
  EXPECT_NEAR(v[1], 1.0, 1e-14);
}

TEST(Haar, PerfectReconstruction1dPow2) {
  auto v = random_signal(256, 1);
  const auto original = v;
  haar_forward_1d(v);
  haar_inverse_1d(v);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], original[i], 1e-12);
  }
}

TEST(Haar, PerfectReconstructionOddLengths) {
  for (std::size_t n : {3u, 5u, 7u, 9u, 17u, 33u, 100u, 101u}) {
    auto v = random_signal(n, static_cast<unsigned>(n));
    const auto original = v;
    haar_forward_1d(v);
    haar_inverse_1d(v);
    for (std::size_t i = 0; i < v.size(); ++i) {
      ASSERT_NEAR(v[i], original[i], 1e-12) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Haar, EnergyPreserved) {
  // Orthonormal transform preserves the L2 norm (odd stragglers pass
  // through untouched, so this holds for any n).
  auto v = random_signal(300, 3);
  double before = 0;
  for (double x : v) before += x * x;
  haar_forward_1d(v);
  double after = 0;
  for (double x : v) after += x * x;
  EXPECT_NEAR(before, after, 1e-9);
}

TEST(Haar, ConstantSignalConcentrates) {
  std::vector<double> v(64, 5.0);
  haar_forward_1d(v);
  // All energy in the single scaling coefficient; details are zero.
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], 0.0, 1e-12);
  }
  EXPECT_NEAR(v[0], 5.0 * 8.0, 1e-12);  // 5 * sqrt(64)
}

TEST(Haar, PartialLevels) {
  auto v = random_signal(64, 4);
  const auto original = v;
  haar_forward_1d(v, 2);
  haar_inverse_1d(v, 2);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], original[i], 1e-12);
  }
}

TEST(Haar, TooManyLevelsThrows) {
  std::vector<double> v(8);
  EXPECT_THROW(haar_forward_1d(v, 4), std::invalid_argument);
}

TEST(Haar2d, PerfectReconstruction) {
  Matrix m(33, 47);
  std::mt19937 rng(5);
  std::normal_distribution<double> dist(0.0, 2.0);
  for (double& v : m.flat()) v = dist(rng);
  const Matrix original = m;
  haar_forward_2d(m);
  haar_inverse_2d(m);
  EXPECT_LT(Matrix::max_abs_diff(m, original), 1e-11);
}

TEST(Haar2d, SmoothImageSparsifies) {
  Matrix m(64, 64);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      m(i, j) = std::sin(0.1 * static_cast<double>(i)) +
                std::cos(0.07 * static_cast<double>(j));
    }
  }
  haar_forward_2d(m);
  const double theta = 0.01 * max_abs_coefficient(m);
  Matrix t = m;
  const std::size_t kept = threshold_coefficients(t, theta);
  // A smooth image should concentrate energy in few coefficients.
  EXPECT_LT(kept, 64 * 64 / 4);
}

TEST(Haar2d, ThresholdingBoundsError) {
  Matrix m(32, 32);
  std::mt19937 rng(6);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (double& v : m.flat()) v = dist(rng);
  const Matrix original = m;

  haar_forward_2d(m);
  threshold_coefficients(m, 0.05 * max_abs_coefficient(m));
  haar_inverse_2d(m);

  // Dropping coefficients with |c| <= theta changes the result, but the
  // Frobenius error is bounded by sqrt(#dropped) * theta.
  const double err = (m - original).frobenius_norm();
  EXPECT_LT(err, 32.0 * 0.05 * 10.0);
  EXPECT_GT(err, 0.0);
}

TEST(Haar, ThresholdCountsSurvivors) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 0.05;
  m(1, 0) = -0.2;
  m(1, 1) = 0.0;
  EXPECT_EQ(threshold_coefficients(m, 0.1), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -0.2);
}

TEST(Haar, MaxAbsCoefficient) {
  Matrix m(2, 3);
  m(0, 0) = -7.0;
  m(1, 2) = 3.0;
  EXPECT_DOUBLE_EQ(max_abs_coefficient(m), 7.0);
}

TEST(Haar, ThresholdForFractionNormalCase) {
  Matrix m(2, 2);
  m(0, 0) = -10.0;
  m(0, 1) = 2.0;
  EXPECT_DOUBLE_EQ(threshold_for_fraction(m, 0.05), 0.5);
}

TEST(Haar, ThresholdForFractionZeroMaxIsZero) {
  // All-zero coefficient planes (e.g. an all-equal field after the detail
  // pass): theta must be exactly 0, not NaN or a sign-dependent value.
  Matrix m(3, 3);
  EXPECT_DOUBLE_EQ(threshold_for_fraction(m, 0.05), 0.0);
  EXPECT_EQ(threshold_coefficients(m, 0.0), 0u);  // all zeros stay zero
}

TEST(Haar, ThresholdForFractionIgnoresNonfiniteCoefficients) {
  Matrix m(2, 2);
  m(0, 0) = std::numeric_limits<double>::infinity();
  m(0, 1) = std::nan("");
  m(1, 0) = 4.0;
  // The fractional maximum is taken over finite entries only; an Inf
  // coefficient must not produce theta = Inf (which would zero the whole
  // matrix).
  EXPECT_DOUBLE_EQ(threshold_for_fraction(m, 0.5), 2.0);
}

TEST(Haar, ThresholdForFractionAllNonfiniteIsZero) {
  Matrix m(1, 2);
  m(0, 0) = std::nan("");
  m(0, 1) = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(threshold_for_fraction(m, 0.05), 0.0);
}

TEST(Haar, ThresholdForFractionDisabledFraction) {
  Matrix m(1, 2);
  m(0, 0) = 3.0;
  EXPECT_DOUBLE_EQ(threshold_for_fraction(m, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(threshold_for_fraction(m, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(threshold_for_fraction(m, std::nan("")), 0.0);
}

TEST(Haar, NanThresholdKeepsEverything) {
  Matrix m(1, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 0.0;
  EXPECT_EQ(threshold_coefficients(m, std::nan("")), 2u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
}

TEST(Haar3d, PerfectReconstruction) {
  const std::size_t nx = 9, ny = 12, nz = 7;
  std::vector<double> data(nx * ny * nz);
  std::mt19937 rng(31);
  std::normal_distribution<double> dist(0.0, 3.0);
  for (double& v : data) v = dist(rng);
  const auto original = data;
  haar_forward_3d(data, nx, ny, nz);
  haar_inverse_3d(data, nx, ny, nz);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(data[i], original[i], 1e-11);
  }
}

TEST(Haar3d, EnergyPreserved) {
  const std::size_t n = 8;
  std::vector<double> data(n * n * n);
  std::mt19937 rng(32);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (double& v : data) v = dist(rng);
  double before = 0;
  for (double v : data) before += v * v;
  haar_forward_3d(data, n, n, n);
  double after = 0;
  for (double v : data) after += v * v;
  EXPECT_NEAR(before, after, 1e-9);
}

TEST(Haar3d, ConstantFieldConcentratesToOneCoefficient) {
  const std::size_t n = 8;
  std::vector<double> data(n * n * n, 2.0);
  haar_forward_3d(data, n, n, n);
  std::size_t nonzero = 0;
  for (double v : data) {
    if (std::fabs(v) > 1e-10) ++nonzero;
  }
  EXPECT_EQ(nonzero, 1u);
  // The scaling coefficient is 2 * sqrt(512).
  EXPECT_NEAR(data[0], 2.0 * std::sqrt(512.0), 1e-10);
}

TEST(Haar3d, SeparableMatchesAxisOrderInvariantEnergy) {
  // Transform of a product function should decorrelate every axis:
  // a field linear in z has only two distinct coefficient magnitudes per
  // z-line after the z pass.  Sanity check: most coefficients are tiny.
  const std::size_t n = 16;
  std::vector<double> data(n * n * n);
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k, ++idx) {
        data[idx] = static_cast<double>(i) + 2.0 * static_cast<double>(j) +
                    3.0 * static_cast<double>(k);
      }
    }
  }
  haar_forward_3d(data, n, n, n);
  std::size_t significant = 0;
  double peak = 0;
  for (double v : data) peak = std::max(peak, std::fabs(v));
  for (double v : data) {
    if (std::fabs(v) > 1e-3 * peak) ++significant;
  }
  EXPECT_LT(significant, data.size() / 10);
}

TEST(Haar3d, RejectsSizeMismatch) {
  std::vector<double> data(10);
  EXPECT_THROW(haar_forward_3d(data, 2, 2, 2), std::invalid_argument);
  EXPECT_THROW(haar_inverse_3d(data, 3, 3, 3), std::invalid_argument);
}

class HaarLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HaarLengthSweep, RoundTrip) {
  auto v = random_signal(GetParam(), 42);
  const auto original = v;
  haar_forward_1d(v);
  haar_inverse_1d(v);
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_NEAR(v[i], original[i], 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, HaarLengthSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 15, 16, 31, 64, 127,
                                           128, 1000));

}  // namespace
}  // namespace rmp::wavelet
