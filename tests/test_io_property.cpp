// Robustness properties of the container format and storage model:
// truncation at *every* byte boundary must throw cleanly (never crash or
// return garbage), random section layouts must round-trip, and the
// storage model must behave monotonically in its inputs.
#include <gtest/gtest.h>

#include <random>

#include "io/container.hpp"
#include "io/storage_model.hpp"

namespace rmp::io {
namespace {

Container random_container(unsigned seed) {
  std::mt19937 rng(seed);
  Container c;
  c.method = "m" + std::to_string(rng() % 1000);
  c.nx = 1 + rng() % 100;
  c.ny = 1 + rng() % 100;
  c.nz = 1 + rng() % 100;
  const std::size_t sections = rng() % 6;
  for (std::size_t s = 0; s < sections; ++s) {
    std::vector<std::uint8_t> bytes(rng() % 300);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    c.add("section" + std::to_string(s), std::move(bytes));
  }
  return c;
}

class ContainerFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ContainerFuzz, RoundTripRandomLayout) {
  const Container c = random_container(GetParam());
  const Container back = deserialize(serialize(c));
  EXPECT_EQ(back.method, c.method);
  EXPECT_EQ(back.nx, c.nx);
  EXPECT_EQ(back.ny, c.ny);
  EXPECT_EQ(back.nz, c.nz);
  ASSERT_EQ(back.sections.size(), c.sections.size());
  for (std::size_t s = 0; s < c.sections.size(); ++s) {
    EXPECT_EQ(back.sections[s].name, c.sections[s].name);
    EXPECT_EQ(back.sections[s].bytes, c.sections[s].bytes);
  }
}

TEST_P(ContainerFuzz, EveryTruncationThrowsCleanly) {
  const auto bytes = serialize(random_container(GetParam()));
  // Step through truncation points (every byte for small containers,
  // strided for large ones to keep runtime sane).
  const std::size_t stride = bytes.size() > 512 ? 7 : 1;
  for (std::size_t cut = 0; cut < bytes.size(); cut += stride) {
    std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_THROW(deserialize(truncated), std::runtime_error) << cut;
  }
}

TEST_P(ContainerFuzz, EverySingleBitFlipIsDetected) {
  const auto bytes = serialize(random_container(GetParam()));
  std::mt19937 rng(GetParam() * 31 + 1);
  // Sample positions (all positions for small payloads).
  for (int trial = 0; trial < 40; ++trial) {
    auto corrupted = bytes;
    const std::size_t byte_index = rng() % corrupted.size();
    corrupted[byte_index] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    EXPECT_THROW(deserialize(corrupted), std::runtime_error)
        << "flip at byte " << byte_index;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainerFuzz, ::testing::Range(0u, 8u));

TEST(StorageModelProperty, IoTimeMonotoneInBytes) {
  StorageModel model;
  double previous = 0.0;
  for (double bytes : {1e6, 1e8, 1e10, 1e12}) {
    const double t = model.io_time(8, bytes);
    EXPECT_GT(t, previous);
    previous = t;
  }
}

TEST(StorageModelProperty, RatioMonotoneInRowTime) {
  EndToEndScenario scenario;
  double previous = 1e300;
  for (double ratio : {1.0, 2.0, 8.0, 64.0}) {
    const auto row = make_row(scenario, "x", 10.0, ratio);
    EXPECT_LT(row.io_time, previous);
    previous = row.io_time;
  }
}

TEST(StorageModelProperty, StagingIndependentOfCompression) {
  EndToEndScenario scenario;
  const auto a = make_staging_row(scenario, "s");
  scenario.storage.filesystem_bandwidth /= 10.0;  // slower FS
  const auto b = make_staging_row(scenario, "s");
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);  // staging bypasses the FS
}

TEST(StorageModelProperty, LatencyAddsConstantOffset) {
  StorageModel model;
  model.write_latency = 0.0;
  const double base = model.io_time(4, 1e9);
  model.write_latency = 2.5;
  EXPECT_NEAR(model.io_time(4, 1e9), base + 2.5, 1e-12);
}

}  // namespace
}  // namespace rmp::io
