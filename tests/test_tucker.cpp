#include "core/tucker.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "compress/factory.hpp"
#include "core/pca.hpp"
#include "sim/heat.hpp"
#include "stats/metrics.hpp"

namespace rmp::core {
namespace {

struct Codecs {
  std::unique_ptr<compress::Compressor> reduced = compress::make_zfp_original();
  std::unique_ptr<compress::Compressor> delta = compress::make_zfp_delta();
  CodecPair pair() const { return {reduced.get(), delta.get()}; }
};

sim::Field separable_field(std::size_t n) {
  // A rank-(1,1,1) tensor: f(i,j,k) = a(i) b(j) c(k).  Tucker must
  // capture it with per-mode rank 1.
  sim::Field f(n, n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        f.at(i, j, k) = std::sin(0.4 * static_cast<double>(i) + 0.3) *
                        (1.0 + 0.1 * static_cast<double>(j)) *
                        std::cos(0.2 * static_cast<double>(k));
      }
    }
  }
  return f;
}

sim::Field heat_field() {
  sim::HeatConfig config;
  config.n = 14;
  config.steps = 100;
  return sim::heat3d_run(config);
}

TEST(Tucker, ModeProportionsSumToOne) {
  const auto proportions = tucker_mode_proportions(separable_field(10));
  ASSERT_EQ(proportions.size(), 3u);
  for (const auto& mode : proportions) {
    double sum = 0;
    for (double p : mode) {
      EXPECT_GE(p, -1e-12);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Tucker, SeparableFieldIsRankOnePerMode) {
  const auto proportions = tucker_mode_proportions(separable_field(10));
  for (const auto& mode : proportions) {
    EXPECT_GT(mode.front(), 0.95);
  }
}

TEST(Tucker, RoundTripSeparableField) {
  Codecs codecs;
  TuckerPreconditioner tucker;
  const sim::Field f = separable_field(12);
  EncodeStats stats;
  const auto container = tucker.encode(f, codecs.pair(), &stats);
  const auto decoded = tucker.decode(container, codecs.pair(), nullptr);
  EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 1e-2);
  // Rank-1 core: the reduced representation should be tiny.
  EXPECT_LT(stats.reduced_bytes, f.size() * sizeof(double) / 10);
}

TEST(Tucker, RoundTripHeatField) {
  Codecs codecs;
  TuckerPreconditioner tucker;
  const sim::Field f = heat_field();
  const auto container = tucker.encode(f, codecs.pair(), nullptr);
  const auto decoded = tucker.decode(container, codecs.pair(), nullptr);
  EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 1.0);
}

TEST(Tucker, WorksOn2dField) {
  Codecs codecs;
  TuckerPreconditioner tucker;
  sim::Field f(20, 16, 1);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      f.at(i, j) = static_cast<double>(i) * 0.5 +
                   std::sin(0.2 * static_cast<double>(j));
    }
  }
  const auto container = tucker.encode(f, codecs.pair(), nullptr);
  const auto decoded = tucker.decode(container, codecs.pair(), nullptr);
  EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 0.1);
}

TEST(Tucker, WorksOn1dFieldViaCanonicalShape) {
  Codecs codecs;
  TuckerPreconditioner tucker;
  sim::Field f(144, 1, 1);
  for (std::size_t i = 0; i < 144; ++i) {
    f.at(i) = std::sin(0.1 * static_cast<double>(i));
  }
  const auto container = tucker.encode(f, codecs.pair(), nullptr);
  const auto decoded = tucker.decode(container, codecs.pair(), nullptr);
  EXPECT_LT(stats::rmse(f.flat(), decoded.flat()), 0.1);
}

TEST(Tucker, RegistryKnowsIt) {
  const auto p = make_preconditioner("tucker");
  EXPECT_EQ(p->name(), "tucker");
}

TEST(Tucker, HigherEnergyTargetKeepsMore) {
  Codecs codecs;
  const sim::Field f = heat_field();
  EncodeStats low, high;
  TuckerPreconditioner({0.80}).encode(f, codecs.pair(), &low);
  TuckerPreconditioner({0.999}).encode(f, codecs.pair(), &high);
  EXPECT_GE(high.reduced_bytes, low.reduced_bytes);
}

TEST(Tucker, RejectsBadTarget) {
  EXPECT_THROW(TuckerPreconditioner({0.0}), std::invalid_argument);
  EXPECT_THROW(TuckerPreconditioner({1.5}), std::invalid_argument);
}

}  // namespace
}  // namespace rmp::core
