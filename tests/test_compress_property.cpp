// Property sweeps over the three codecs: round-trip validity, error-bound
// compliance and monotonicity across a grid of shapes, sizes and data
// families that unit tests don't reach.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <tuple>

#include "compress/fpc.hpp"
#include "compress/sz.hpp"
#include "compress/zfp_like.hpp"

namespace rmp::compress {
namespace {

enum class DataFamily { kSmooth, kNoisy, kSteppy, kSparseZero, kHugeRange };

std::string family_name(DataFamily family) {
  switch (family) {
    case DataFamily::kSmooth: return "smooth";
    case DataFamily::kNoisy: return "noisy";
    case DataFamily::kSteppy: return "steppy";
    case DataFamily::kSparseZero: return "sparsezero";
    case DataFamily::kHugeRange: return "hugerange";
  }
  return "?";
}

std::vector<double> make_data(DataFamily family, std::size_t count,
                              unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<double> data(count);
  switch (family) {
    case DataFamily::kSmooth:
      for (std::size_t i = 0; i < count; ++i) {
        data[i] = 3.0 * std::sin(0.02 * static_cast<double>(i)) +
                  std::cos(0.005 * static_cast<double>(i));
      }
      break;
    case DataFamily::kNoisy:
      for (double& v : data) v = gauss(rng);
      break;
    case DataFamily::kSteppy:
      for (std::size_t i = 0; i < count; ++i) {
        data[i] = static_cast<double>((i / 100) % 7) * 10.0;
      }
      break;
    case DataFamily::kSparseZero:
      for (std::size_t i = 0; i < count; ++i) {
        data[i] = (i % 13 == 0) ? gauss(rng) * 5.0 : 0.0;
      }
      break;
    case DataFamily::kHugeRange:
      for (std::size_t i = 0; i < count; ++i) {
        data[i] = std::ldexp(gauss(rng), static_cast<int>(i % 120) - 60);
      }
      break;
  }
  return data;
}

using Param = std::tuple<DataFamily, std::size_t>;

class SzProperty : public ::testing::TestWithParam<Param> {};

TEST_P(SzProperty, AbsoluteBoundHolds) {
  const auto& [family, count] = GetParam();
  const auto data = make_data(family, count, 1);
  double range = 0;
  for (double v : data) range = std::max(range, std::fabs(v));
  const double bound = std::max(range, 1.0) * 1e-6;

  SzCompressor codec({SzMode::kAbsolute, bound, 16});
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d1(count)));
  ASSERT_EQ(decoded.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_LE(std::fabs(decoded[i] - data[i]), bound) << i;
  }
}

TEST_P(SzProperty, BlockRelativeBoundHolds) {
  const auto& [family, count] = GetParam();
  const auto data = make_data(family, count, 2);
  double global_max = 0;
  for (double v : data) global_max = std::max(global_max, std::fabs(v));
  const double rel = 1e-4;

  SzCompressor codec({SzMode::kBlockRelative, rel, 16});
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d1(count)));
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_LE(std::fabs(decoded[i] - data[i]),
              rel * std::max(global_max, 1.0) * 1.0001)
        << i;
  }
}

TEST_P(SzProperty, TighterBoundNeverSmaller) {
  const auto& [family, count] = GetParam();
  const auto data = make_data(family, count, 3);
  double range = 0;
  for (double v : data) range = std::max(range, std::fabs(v));
  range = std::max(range, 1.0);

  SzCompressor loose({SzMode::kAbsolute, range * 1e-3, 16});
  SzCompressor tight({SzMode::kAbsolute, range * 1e-9, 16});
  const auto loose_bytes = loose.compress(data, Dims::d1(count)).size();
  const auto tight_bytes = tight.compress(data, Dims::d1(count)).size();
  // Tighter bounds compress approximately no better.  (Not strictly
  // monotone: outliers stored verbatim can be *more* LZ-compressible
  // than quantization codes, e.g. step functions of round values.)
  EXPECT_LE(loose_bytes, 2 * tight_bytes + 64);
}

TEST_P(SzProperty, HybridPredictorBoundHolds) {
  const auto& [family, count] = GetParam();
  const auto data = make_data(family, count, 8);
  double range = 0;
  for (double v : data) range = std::max(range, std::fabs(v));
  const double bound = std::max(range, 1.0) * 1e-6;

  SzCompressor codec({SzMode::kAbsolute, bound, 16, SzPredictor::kHybrid});
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d1(count)));
  ASSERT_EQ(decoded.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_LE(std::fabs(decoded[i] - data[i]), bound) << i;
  }
}

TEST_P(SzProperty, HybridNeverMuchWorseThanLorenzo) {
  const auto& [family, count] = GetParam();
  const auto data = make_data(family, count, 9);
  double range = 0;
  for (double v : data) range = std::max(range, std::fabs(v));
  const double bound = std::max(range, 1.0) * 1e-5;

  SzCompressor lorenzo({SzMode::kAbsolute, bound, 16, SzPredictor::kLorenzo});
  SzCompressor hybrid({SzMode::kAbsolute, bound, 16, SzPredictor::kHybrid});
  const auto lorenzo_bytes = lorenzo.compress(data, Dims::d1(count)).size();
  const auto hybrid_bytes = hybrid.compress(data, Dims::d1(count)).size();
  // Hybrid falls back to Lorenzo per block, so its only possible loss is
  // the model header (flag bitmap + coefficients).
  EXPECT_LE(hybrid_bytes, lorenzo_bytes + count / 8 + 256);
}

INSTANTIATE_TEST_SUITE_P(
    Families, SzProperty,
    ::testing::Combine(::testing::Values(DataFamily::kSmooth,
                                         DataFamily::kNoisy,
                                         DataFamily::kSteppy,
                                         DataFamily::kSparseZero,
                                         DataFamily::kHugeRange),
                       ::testing::Values(17, 1000, 4099)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return family_name(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

class ZfpProperty : public ::testing::TestWithParam<Param> {};

TEST_P(ZfpProperty, FixedAccuracyBoundHolds) {
  const auto& [family, count] = GetParam();
  if (family == DataFamily::kHugeRange) {
    GTEST_SKIP() << "per-block exponent mode: tolerance is per-block here";
  }
  const auto data = make_data(family, count, 4);
  double range = 0;
  for (double v : data) range = std::max(range, std::fabs(v));
  const double tolerance = std::max(range, 1.0) * 1e-7;

  ZfpCompressor codec({ZfpMode::kFixedAccuracy, 0, tolerance});
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d1(count)));
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_LE(std::fabs(decoded[i] - data[i]), tolerance) << i;
  }
}

TEST_P(ZfpProperty, PrecisionMonotonicity) {
  const auto& [family, count] = GetParam();
  const auto data = make_data(family, count, 5);
  double previous_error = std::numeric_limits<double>::infinity();
  for (unsigned precision : {10u, 20u, 40u}) {
    ZfpCompressor codec({ZfpMode::kFixedPrecision, precision, 0.0});
    const auto decoded =
        codec.decompress(codec.compress(data, Dims::d1(count)));
    double err = 0;
    for (std::size_t i = 0; i < count; ++i) {
      err = std::max(err, std::fabs(decoded[i] - data[i]));
    }
    EXPECT_LE(err, previous_error * 1.0001 + 1e-300) << precision;
    previous_error = err;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ZfpProperty,
    ::testing::Combine(::testing::Values(DataFamily::kSmooth,
                                         DataFamily::kNoisy,
                                         DataFamily::kSteppy,
                                         DataFamily::kSparseZero,
                                         DataFamily::kHugeRange),
                       ::testing::Values(16, 333, 4096)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return family_name(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

class FpcProperty : public ::testing::TestWithParam<Param> {};

TEST_P(FpcProperty, BitExactRoundTrip) {
  const auto& [family, count] = GetParam();
  const auto data = make_data(family, count, 6);
  FpcCompressor codec({16});
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d1(count)));
  ASSERT_EQ(decoded.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t a, b;
    std::memcpy(&a, &data[i], 8);
    std::memcpy(&b, &decoded[i], 8);
    ASSERT_EQ(a, b) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, FpcProperty,
    ::testing::Combine(::testing::Values(DataFamily::kSmooth,
                                         DataFamily::kNoisy,
                                         DataFamily::kSteppy,
                                         DataFamily::kSparseZero,
                                         DataFamily::kHugeRange),
                       ::testing::Values(1, 255, 2048)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return family_name(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

// 2D/3D shape sweep: partial blocks in every dimension combination.
class ZfpShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t>> {};

TEST_P(ZfpShapeSweep, PartialBlocksEverywhere) {
  const auto& [nx, ny, nz] = GetParam();
  std::vector<double> data(nx * ny * nz);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(0.1 * static_cast<double>(i)) * 7.0;
  }
  ZfpCompressor codec({ZfpMode::kFixedPrecision, 62, 0.0});
  const auto decoded =
      codec.decompress(codec.compress(data, {nx, ny, nz}));
  ASSERT_EQ(decoded.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_NEAR(decoded[i], data[i], 1e-12) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZfpShapeSweep,
    ::testing::Values(std::make_tuple(1u, 1u, 1u), std::make_tuple(3u, 1u, 1u),
                      std::make_tuple(4u, 4u, 1u), std::make_tuple(5u, 5u, 1u),
                      std::make_tuple(7u, 3u, 1u), std::make_tuple(4u, 4u, 4u),
                      std::make_tuple(5u, 6u, 7u),
                      std::make_tuple(9u, 2u, 11u)));

}  // namespace
}  // namespace rmp::compress
