// Hostile-input hardening suite for the Huffman codec (DESIGN.md §13) plus
// golden-bytes pins proving the fast-path rewrite emits byte-identical
// streams.
//
// The decode contract under attack: any byte stream either decodes to the
// symbols a real encoder wrote, or fails with a typed CodecError -- never a
// crash, never an unbounded allocation, never fabricated output.
#include "compress/huffman.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "compress/bitstream.hpp"
#include "compress/codec_error.hpp"
#include "compress/lossless.hpp"
#include "compress/sz.hpp"
#include "io/checksum.hpp"
#include "la/eigen.hpp"
#include "la/svd.hpp"

namespace rmp::compress {
namespace {

// --- shared deterministic inputs (mirrored in the golden generator) -----

std::vector<std::uint32_t> symbol_stream(int which) {
  std::vector<std::uint32_t> s;
  switch (which) {
    case 0: {  // skewed, SZ-like: 95% one symbol
      std::mt19937 rng(7);
      for (int i = 0; i < 20000; ++i)
        s.push_back(rng() % 100 < 95 ? 32768u : rng() % 65536);
      break;
    }
    case 1: {  // large alphabet uniform
      std::mt19937 rng(99);
      for (int i = 0; i < 5000; ++i) s.push_back(rng() % 65536);
      break;
    }
    case 2:  // sparse huge values
      s = {0xFFFFFFFFu, 0, 0xFFFFFFFFu, 123456789u,
           0xFFFFFFFFu, 0, 123456789u};
      break;
    case 3: {  // fibonacci-ish depth-driving profile
      std::uint64_t a = 1, b = 1;
      for (std::uint32_t sym = 0; sym < 40; ++sym) {
        for (std::uint64_t i = 0; i < std::min<std::uint64_t>(a, 10000); ++i)
          s.push_back(sym);
        const std::uint64_t next = a + b;
        a = b;
        b = next;
      }
      break;
    }
    case 4:  // single distinct symbol
      s.assign(100, 42);
      break;
    case 5:  // two-symbol alternation
      for (int i = 0; i < 333; ++i) s.push_back(i % 5 == 0 ? 9u : 4u);
      break;
  }
  return s;
}

std::vector<double> synthetic_field(std::size_t n) {
  std::vector<double> f(n);
  std::mt19937_64 rng(1234);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double noise =
        static_cast<double>(rng() >> 11) / 9007199254740992.0;  // [0,1)
    acc = 0.95 * acc + 0.05 * noise;
    f[i] = std::sin(0.01 * static_cast<double>(i)) +
           0.3 * std::cos(0.037 * static_cast<double>(i)) + 0.01 * acc;
  }
  return f;
}

// --- truncation: every prefix must fail typed or decode correctly -------

void expect_truncation_hardened(const std::vector<std::uint8_t>& bytes,
                                const std::vector<std::uint32_t>& expected) {
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    try {
      const auto decoded = huffman_decode(prefix);
      // Reachable only when the cut removed pure padding; the payload must
      // still be exactly right -- a truncated stream must never fabricate.
      EXPECT_EQ(decoded, expected) << "cut=" << cut;
    } catch (const CodecError&) {
      // Typed rejection is the expected outcome.
    }
  }
}

TEST(HuffmanHostile, TruncatedAtEveryByteSkewed) {
  const auto symbols = symbol_stream(5);
  expect_truncation_hardened(huffman_encode(symbols), symbols);
}

TEST(HuffmanHostile, TruncatedAtEveryByteSparseAlphabet) {
  const auto symbols = symbol_stream(2);
  expect_truncation_hardened(huffman_encode(symbols), symbols);
}

TEST(HuffmanHostile, TruncatedAtEveryByteSingleSymbol) {
  const auto symbols = symbol_stream(4);
  expect_truncation_hardened(huffman_encode(symbols), symbols);
}

TEST(HuffmanHostile, TruncatedDeepAlphabetSampled) {
  // The 16-bit-alphabet stream is large; cut at a byte stride instead of
  // every byte to keep the suite fast while still crossing the table, the
  // fast-path payload, and the slow-path payload regions.
  const auto symbols = symbol_stream(1);
  const auto bytes = huffman_encode(symbols);
  for (std::size_t cut = 0; cut < bytes.size();
       cut += std::max<std::size_t>(1, bytes.size() / 509)) {
    try {
      const auto decoded =
          huffman_decode(std::span<const std::uint8_t>(bytes.data(), cut));
      EXPECT_EQ(decoded, symbols) << "cut=" << cut;
    } catch (const CodecError&) {
    }
  }
}

// --- stream-controlled counts must be capped before allocation ----------

TEST(HuffmanHostile, OversizedSymbolCountIsTypedNotBadAlloc) {
  BitWriter writer;
  writer.put_bits(std::uint64_t{1} << 60, 64);  // absurd symbol count
  writer.put_bits(1, 32);                       // 1-entry table
  writer.put_bits(42, 32);
  writer.put_bits(1, 6);
  const auto bytes = writer.take();
  try {
    huffman_decode(bytes);
    FAIL() << "oversized symbol count accepted";
  } catch (const CodecError& e) {
    EXPECT_EQ(e.code(), CodecErrc::kCountOverflow);
  }
}

TEST(HuffmanHostile, OversizedTableCountIsTypedNotBadAlloc) {
  BitWriter writer;
  writer.put_bits(4, 64);
  writer.put_bits(0xFFFFFFFFu, 32);  // table claims 4 billion entries
  const auto bytes = writer.take();
  try {
    huffman_decode(bytes);
    FAIL() << "oversized table count accepted";
  } catch (const CodecError& e) {
    EXPECT_EQ(e.code(), CodecErrc::kCountOverflow);
  }
}

// --- table validation ---------------------------------------------------

namespace {
std::vector<std::uint8_t> stream_with_table(
    std::uint64_t symbol_count,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& entries) {
  BitWriter writer;
  writer.put_bits(symbol_count, 64);
  writer.put_bits(entries.size(), 32);
  for (const auto& [symbol, length] : entries) {
    writer.put_bits(symbol, 32);
    writer.put_bits(length, 6);
  }
  // Some payload bits so failures are attributable to the table itself.
  writer.put_bits(0, 64);
  return writer.take();
}
}  // namespace

TEST(HuffmanHostile, ZeroCodeLengthRejected) {
  const auto bytes = stream_with_table(4, {{1, 0}, {2, 1}});
  try {
    huffman_decode(bytes);
    FAIL() << "zero code length accepted";
  } catch (const CodecError& e) {
    EXPECT_EQ(e.code(), CodecErrc::kMalformedTable);
  }
}

TEST(HuffmanHostile, OversizedCodeLengthRejected) {
  const auto bytes = stream_with_table(4, {{1, 59}, {2, 1}});
  try {
    huffman_decode(bytes);
    FAIL() << "oversized code length accepted";
  } catch (const CodecError& e) {
    EXPECT_EQ(e.code(), CodecErrc::kMalformedTable);
  }
}

TEST(HuffmanHostile, KraftOversubscribedTableRejected) {
  // Three length-1 codes oversubscribe the code space (sum 3/2 > 1).
  const auto bytes = stream_with_table(4, {{1, 1}, {2, 1}, {3, 1}});
  try {
    huffman_decode(bytes);
    FAIL() << "Kraft-violating table accepted";
  } catch (const CodecError& e) {
    EXPECT_EQ(e.code(), CodecErrc::kMalformedTable);
  }
}

TEST(HuffmanHostile, KraftOverflowDoesNotWrap) {
  // 60 length-1 codes: a naive Kraft accumulator in 2^-58 units wraps
  // around 64 bits; the incremental check must reject at the second entry.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
  for (std::uint32_t i = 0; i < 60; ++i) entries.push_back({i, 1});
  const auto bytes = stream_with_table(4, entries);
  try {
    huffman_decode(bytes);
    FAIL() << "wrapping Kraft sum accepted";
  } catch (const CodecError& e) {
    EXPECT_EQ(e.code(), CodecErrc::kMalformedTable);
  }
}

TEST(HuffmanHostile, SingleEntryTableRequiresLengthOne) {
  const auto bytes = stream_with_table(4, {{7, 3}});
  try {
    huffman_decode(bytes);
    FAIL() << "non-canonical single-entry table accepted";
  } catch (const CodecError& e) {
    EXPECT_EQ(e.code(), CodecErrc::kMalformedTable);
  }
}

TEST(HuffmanHostile, IncompleteCodeSpaceYieldsInvalidCodeNotCrash) {
  // {len 2, len 2} covers half the code space; a payload starting with the
  // uncovered prefix must fail typed (kInvalidCode), not read off a table.
  BitWriter writer;
  writer.put_bits(1, 64);
  writer.put_bits(2, 32);
  writer.put_bits(1, 32);
  writer.put_bits(2, 6);
  writer.put_bits(2, 32);
  writer.put_bits(2, 6);
  // Canonical codes are 00 and 01 (MSB-first), i.e. the first transmitted
  // bit of every valid code is 0.  Send 1-bits.
  writer.put_bits(0xFF, 8);
  const auto bytes = writer.take();
  try {
    huffman_decode(bytes);
    FAIL() << "uncovered code prefix accepted";
  } catch (const CodecError& e) {
    EXPECT_TRUE(e.code() == CodecErrc::kInvalidCode ||
                e.code() == CodecErrc::kTruncated)
        << to_string(e.code());
  }
}

// --- downstream consumers stay typed too --------------------------------

TEST(HuffmanHostile, LosslessTruncatedAtEveryByte) {
  std::vector<std::uint8_t> input;
  std::mt19937 rng(5);
  for (int i = 0; i < 4096; ++i)
    input.push_back(static_cast<std::uint8_t>(rng() % 7 * 13));
  for (int r = 0; r < 4; ++r)
    input.insert(input.end(), input.begin(), input.begin() + 1024);
  const auto bytes = lossless_compress(input);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    try {
      const auto decoded =
          lossless_decompress(std::span<const std::uint8_t>(bytes.data(), cut));
      EXPECT_EQ(decoded, input) << "cut=" << cut;
    } catch (const CodecError&) {
    }
  }
}

TEST(HuffmanHostile, SzTruncatedAtEveryByte) {
  const compress::Dims dims{17, 13, 9};
  const auto field = synthetic_field(dims.count());
  const compress::SzCompressor sz{SzOptions{}};
  const auto archive = sz.compress(field, dims);
  const auto full = sz.decompress(archive);
  for (std::size_t cut = 0; cut < archive.size(); ++cut) {
    try {
      const auto decoded = sz.decompress(
          std::vector<std::uint8_t>(archive.begin(), archive.begin() + cut));
      EXPECT_EQ(decoded, full) << "cut=" << cut;
    } catch (const CodecError&) {
    }
  }
}

// --- golden bytes: the rewrite must not move a single bit ---------------
//
// Sizes and CRC32s below were captured from the implementation as of the
// previous release (pre-fast-path).  Any drift here means archives on disk
// would stop being reproducible -- fail loudly.

TEST(HuffmanGolden, EncoderBytesArePinned) {
  const struct {
    std::size_t size;
    std::uint32_t crc;
  } golden[6] = {{8399u, 0xFE26B72Fu},  {30533u, 0x840962C4u},
                 {28u, 0x4567C535u},    {127232u, 0xCB1B264Cu},
                 {30u, 0xCD7AC4D1u},    {64u, 0x6EC249B5u}};
  for (int w = 0; w < 6; ++w) {
    const auto bytes = huffman_encode(symbol_stream(w));
    EXPECT_EQ(bytes.size(), golden[w].size) << "stream " << w;
    EXPECT_EQ(io::crc32(bytes), golden[w].crc) << "stream " << w;
  }
  const auto empty = huffman_encode({});
  EXPECT_EQ(empty.size(), 8u);
  EXPECT_EQ(io::crc32(empty), 0x6522DF69u);
}

TEST(HuffmanGolden, LosslessBytesArePinned) {
  std::vector<std::uint8_t> input;
  std::mt19937 rng(5);
  for (int i = 0; i < 4096; ++i)
    input.push_back(static_cast<std::uint8_t>(rng() % 7 * 13));
  for (int r = 0; r < 4; ++r)
    input.insert(input.end(), input.begin(), input.begin() + 1024);
  const auto bytes = lossless_compress(input);
  EXPECT_EQ(bytes.size(), 2114u);
  EXPECT_EQ(io::crc32(bytes), 0x149AA40Fu);
}

TEST(HuffmanGolden, SzArchiveBytesArePinned) {
  const compress::Dims dims{17, 13, 9};
  const auto field = synthetic_field(dims.count());
  const struct {
    SzMode mode;
    SzPredictor pred;
    double bound;
    std::size_t size;
    std::uint32_t crc;
  } cfgs[] = {
      {SzMode::kAbsolute, SzPredictor::kLorenzo, 1e-4, 3405u, 0xBA0A7283u},
      {SzMode::kBlockRelative, SzPredictor::kLorenzo, 1e-5, 6376u, 0xD372D1ADu},
      {SzMode::kPointwiseRelative, SzPredictor::kLorenzo, 1e-5, 9711u,
       0xA50E8197u},
      {SzMode::kAbsolute, SzPredictor::kHybrid, 1e-4, 3440u, 0x23C0CD19u},
      {SzMode::kBlockRelative, SzPredictor::kHybrid, 1e-5, 6411u, 0x3E4AE84Cu},
  };
  for (const auto& c : cfgs) {
    SzOptions opt;
    opt.mode = c.mode;
    opt.predictor = c.pred;
    opt.bound = c.bound;
    const SzCompressor sz(opt);
    const auto bytes = sz.compress(field, dims);
    EXPECT_EQ(bytes.size(), c.size);
    EXPECT_EQ(io::crc32(bytes), c.crc);
  }

  const Dims d2{64, 31, 1};
  const SzCompressor szd{SzOptions{}};
  const auto b2 = szd.compress(synthetic_field(d2.count()), d2);
  EXPECT_EQ(b2.size(), 6921u);
  EXPECT_EQ(io::crc32(b2), 0xDA613D62u);
  const Dims d1{1536, 1, 1};
  const auto b1 = szd.compress(synthetic_field(d1.count()), d1);
  EXPECT_EQ(b1.size(), 1583u);
  EXPECT_EQ(io::crc32(b1), 0x38035022u);
}

TEST(HuffmanGolden, JacobiSweepsAreBitIdentical) {
  // The cache-blocked eigen/SVD sweeps must produce bit-identical floats;
  // pin the raw IEEE bytes of both factorizations.
  const std::size_t n = 24;
  la::Matrix m(n, n);
  std::mt19937_64 rng(77);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double v =
          static_cast<double>(rng() >> 11) / 9007199254740992.0 - 0.5;
      m(i, j) = v;
      m(j, i) = v;
    }
  const auto eig = la::jacobi_eigen(m);
  std::vector<std::uint8_t> raw;
  auto push = [&raw](const double* p, std::size_t cnt) {
    const auto* b = reinterpret_cast<const std::uint8_t*>(p);
    raw.insert(raw.end(), b, b + cnt * sizeof(double));
  };
  push(eig.values.data(), eig.values.size());
  push(eig.vectors.flat().data(), eig.vectors.flat().size());
  EXPECT_TRUE(eig.converged);
  EXPECT_EQ(raw.size(), 4800u);
  EXPECT_EQ(io::crc32(raw), 0x36A1F1E3u);

  la::Matrix r(37, 19);
  for (std::size_t i = 0; i < r.rows(); ++i)
    for (std::size_t j = 0; j < r.cols(); ++j)
      r(i, j) = static_cast<double>(rng() >> 11) / 9007199254740992.0 - 0.5;
  const auto svd = la::jacobi_svd(r);
  raw.clear();
  push(svd.sigma.data(), svd.sigma.size());
  push(svd.u.flat().data(), svd.u.flat().size());
  push(svd.v.flat().data(), svd.v.flat().size());
  EXPECT_TRUE(svd.converged);
  EXPECT_EQ(raw.size(), 8664u);
  EXPECT_EQ(io::crc32(raw), 0xAA514E9Bu);
}

}  // namespace
}  // namespace rmp::compress
