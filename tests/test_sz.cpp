#include "compress/sz.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace rmp::compress {
namespace {

std::vector<double> smooth_2d(std::size_t nx, std::size_t ny) {
  std::vector<double> data(nx * ny);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      const double x = static_cast<double>(i) / static_cast<double>(nx);
      const double y = static_cast<double>(j) / static_cast<double>(ny);
      data[i * ny + j] = std::sin(4 * x) * std::cos(3 * y) + 2.0 * x * y;
    }
  }
  return data;
}

TEST(Sz, AbsoluteBoundIsRespected1d) {
  const double bound = 1e-4;
  SzCompressor codec({SzMode::kAbsolute, bound, 16});
  std::vector<double> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(0.01 * static_cast<double>(i));
  }
  const auto stream = codec.compress(data, Dims::d1(data.size()));
  const auto decoded = codec.decompress(stream);
  ASSERT_EQ(decoded.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_LE(std::fabs(decoded[i] - data[i]), bound) << "at " << i;
  }
}

TEST(Sz, AbsoluteBoundIsRespected2d) {
  const double bound = 1e-5;
  SzCompressor codec({SzMode::kAbsolute, bound, 16});
  const auto data = smooth_2d(64, 64);
  const auto stream = codec.compress(data, Dims::d2(64, 64));
  const auto decoded = codec.decompress(stream);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::fabs(decoded[i] - data[i]), bound);
  }
}

TEST(Sz, AbsoluteBoundIsRespected3d) {
  const double bound = 1e-4;
  SzCompressor codec({SzMode::kAbsolute, bound, 16});
  std::vector<double> data(16 * 16 * 16);
  std::size_t n = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      for (std::size_t k = 0; k < 16; ++k, ++n) {
        data[n] = std::exp(-0.01 * static_cast<double>(i * i + j * j + k * k));
      }
    }
  }
  const auto stream = codec.compress(data, Dims::d3(16, 16, 16));
  const auto decoded = codec.decompress(stream);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::fabs(decoded[i] - data[i]), bound);
  }
}

TEST(Sz, PointwiseRelativeBoundIsRespected) {
  const double rel = 1e-3;
  SzCompressor codec({SzMode::kPointwiseRelative, rel, 16});
  std::vector<double> data;
  for (int i = 1; i <= 2000; ++i) {
    // Values spanning 6 orders of magnitude, both signs.
    data.push_back((i % 2 == 0 ? 1.0 : -1.0) *
                   std::pow(10.0, (i % 7) - 3) * (1.0 + 0.001 * i));
  }
  const auto stream = codec.compress(data, Dims::d1(data.size()));
  const auto decoded = codec.decompress(stream);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::fabs(decoded[i] - data[i]), rel * std::fabs(data[i]) * 1.0001)
        << "at " << i;
  }
}

TEST(Sz, ExactZerosRoundTripExactly) {
  SzCompressor codec({SzMode::kPointwiseRelative, 1e-4, 16});
  std::vector<double> data(500, 0.0);
  for (std::size_t i = 100; i < 200; ++i) data[i] = 3.5;
  const auto decoded = codec.decompress(codec.compress(data, Dims::d1(500)));
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(decoded[i], 0.0);
  for (std::size_t i = 300; i < 500; ++i) EXPECT_EQ(decoded[i], 0.0);
}

TEST(Sz, SmoothDataCompressesWell) {
  SzCompressor codec({SzMode::kAbsolute, 1e-6, 16});
  const auto data = smooth_2d(128, 128);
  const auto stream = codec.compress(data, Dims::d2(128, 128));
  EXPECT_GT(compression_ratio(data.size(), stream.size()), 4.0);
}

TEST(Sz, SmootherDataCompressesBetter) {
  SzCompressor codec({SzMode::kAbsolute, 1e-6, 16});
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> noise(-1.0, 1.0);
  std::vector<double> smooth(4096), rough(4096);
  for (std::size_t i = 0; i < smooth.size(); ++i) {
    smooth[i] = std::sin(0.01 * static_cast<double>(i));
    rough[i] = noise(rng);
  }
  const auto smooth_bytes = codec.compress(smooth, Dims::d1(4096)).size();
  const auto rough_bytes = codec.compress(rough, Dims::d1(4096)).size();
  EXPECT_LT(smooth_bytes, rough_bytes / 2);
}

TEST(Sz, HandlesConstantData) {
  SzCompressor codec({SzMode::kAbsolute, 1e-8, 16});
  std::vector<double> data(1000, 3.14159);
  const auto stream = codec.compress(data, Dims::d1(1000));
  const auto decoded = codec.decompress(stream);
  for (double v : decoded) EXPECT_NEAR(v, 3.14159, 1e-8);
  EXPECT_GT(compression_ratio(1000, stream.size()), 20.0);
}

TEST(Sz, HandlesNanInfAsZeroClassExceptions) {
  SzCompressor codec({SzMode::kPointwiseRelative, 1e-4, 16});
  std::vector<double> data = {1.0, std::nan(""), 2.0,
                              std::numeric_limits<double>::infinity(), -3.0};
  const auto decoded = codec.decompress(codec.compress(data, Dims::d1(5)));
  EXPECT_TRUE(std::isnan(decoded[1]));
  EXPECT_TRUE(std::isinf(decoded[3]));
  EXPECT_NEAR(decoded[4], -3.0, 3e-4);
}

TEST(Sz, RejectsBadConstruction) {
  EXPECT_THROW(SzCompressor({SzMode::kAbsolute, 0.0, 16}),
               std::invalid_argument);
  EXPECT_THROW(SzCompressor({SzMode::kAbsolute, 1e-5, 1}),
               std::invalid_argument);
}

TEST(Sz, RejectsShapeMismatch) {
  SzCompressor codec;
  std::vector<double> data(10);
  EXPECT_THROW(codec.compress(data, Dims::d1(11)), std::invalid_argument);
}

TEST(SzBlockRel, BoundIsValueRangeRelative) {
  const double rel = 1e-4;
  SzCompressor codec({SzMode::kBlockRelative, rel, 16});
  const auto data = smooth_2d(64, 64);
  double global_max = 0;
  for (double v : data) global_max = std::max(global_max, std::fabs(v));
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d2(64, 64)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Per-block bound is rel * block max <= rel * global max.
    ASSERT_LE(std::fabs(decoded[i] - data[i]), rel * global_max * 1.0001);
  }
}

TEST(SzBlockRel, SmoothZeroCrossingDeltaCompressesWell) {
  // The motivating case: a smooth signal oscillating through zero.  The
  // log-transform pointwise mode shreds it; block-relative keeps the
  // Lorenzo residuals tiny.
  std::vector<double> delta(8192);
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = 1e-3 * std::sin(0.01 * static_cast<double>(i));
  }
  SzCompressor block({SzMode::kBlockRelative, 1e-3, 16});
  const auto block_bytes = block.compress(delta, Dims::d1(delta.size()));
  // Few bits per value: ratio comfortably above 8x.
  EXPECT_GT(compression_ratio(delta.size(), block_bytes.size()), 8.0);
  // And the reconstruction is within the block-relative bound.
  const auto decoded = block.decompress(block_bytes);
  for (std::size_t i = 0; i < delta.size(); ++i) {
    ASSERT_LE(std::fabs(decoded[i] - delta[i]), 1e-3 * 1e-3 * 1.001);
  }
}

TEST(SzBlockRel, AllZeroInputRoundTrips) {
  SzCompressor codec({SzMode::kBlockRelative, 1e-3, 16});
  std::vector<double> data(3000, 0.0);
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d1(3000)));
  for (double v : decoded) EXPECT_EQ(v, 0.0);
}

TEST(SzBlockRel, MixedMagnitudeBlocksGetLocalBounds) {
  // First block tiny values, later blocks huge: the tiny block must not
  // be flattened by the huge block's bound.
  std::vector<double> data(4096);
  for (std::size_t i = 0; i < 2048; ++i) {
    data[i] = 1e-6 * std::sin(0.05 * static_cast<double>(i));
  }
  for (std::size_t i = 2048; i < 4096; ++i) {
    data[i] = 1e+3 * std::sin(0.05 * static_cast<double>(i));
  }
  SzCompressor codec({SzMode::kBlockRelative, 1e-4, 16});
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d1(4096)));
  for (std::size_t i = 0; i < 1024; ++i) {
    // Within the first (entirely tiny) block, the bound is 1e-4 * 1e-6.
    ASSERT_LE(std::fabs(decoded[i] - data[i]), 1e-4 * 1e-6 * 1.001) << i;
  }
}

TEST(SzHybrid, RoundTripRespectsAbsoluteBound) {
  const double bound = 1e-5;
  SzCompressor codec({SzMode::kAbsolute, bound, 16, SzPredictor::kHybrid});
  const auto data = smooth_2d(48, 48);
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d2(48, 48)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::fabs(decoded[i] - data[i]), bound) << i;
  }
}

TEST(SzHybrid, RoundTrip3d) {
  const double bound = 1e-4;
  SzCompressor codec({SzMode::kAbsolute, bound, 16, SzPredictor::kHybrid});
  std::vector<double> data(13 * 14 * 15);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 3.0 * std::sin(0.01 * static_cast<double>(i)) +
              0.001 * static_cast<double>(i % 97);
  }
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d3(13, 14, 15)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::fabs(decoded[i] - data[i]), bound) << i;
  }
}

TEST(SzHybrid, RegressionWinsOnNoisyTrend) {
  // A strong linear trend plus white noise: Lorenzo's residual is ~2x the
  // noise, while regression's is ~1x, so hybrid should compress better.
  std::mt19937 rng(21);
  std::normal_distribution<double> noise(0.0, 0.01);
  std::vector<double> data(64 * 64);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      data[i * 64 + j] = 0.5 * static_cast<double>(i) +
                         0.25 * static_cast<double>(j) + noise(rng);
    }
  }
  SzCompressor lorenzo({SzMode::kAbsolute, 1e-4, 16, SzPredictor::kLorenzo});
  SzCompressor hybrid({SzMode::kAbsolute, 1e-4, 16, SzPredictor::kHybrid});
  const auto lorenzo_bytes = lorenzo.compress(data, Dims::d2(64, 64)).size();
  const auto hybrid_bytes = hybrid.compress(data, Dims::d2(64, 64)).size();
  EXPECT_LT(hybrid_bytes, lorenzo_bytes);
}

TEST(SzHybrid, FallsBackToLorenzoOnSmoothData) {
  // On very smooth data Lorenzo's residual beats any hyperplane, so the
  // hybrid stream must be within model-overhead distance of pure Lorenzo.
  const auto data = smooth_2d(64, 64);
  SzCompressor lorenzo({SzMode::kAbsolute, 1e-6, 16, SzPredictor::kLorenzo});
  SzCompressor hybrid({SzMode::kAbsolute, 1e-6, 16, SzPredictor::kHybrid});
  const auto lorenzo_bytes = lorenzo.compress(data, Dims::d2(64, 64)).size();
  const auto hybrid_bytes = hybrid.compress(data, Dims::d2(64, 64)).size();
  EXPECT_LT(hybrid_bytes, lorenzo_bytes * 3 / 2 + 256);
}

TEST(SzHybrid, WorksWithBlockRelativeMode) {
  SzCompressor codec(
      {SzMode::kBlockRelative, 1e-4, 16, SzPredictor::kHybrid});
  std::vector<double> data(4000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i) * 0.1 +
              std::sin(0.3 * static_cast<double>(i));
  }
  double global_max = 0;
  for (double v : data) global_max = std::max(global_max, std::fabs(v));
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d1(4000)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::fabs(decoded[i] - data[i]), 1e-4 * global_max * 1.0001);
  }
}

class SzBoundSweep : public ::testing::TestWithParam<double> {};

TEST_P(SzBoundSweep, BoundRespectedAcrossMagnitudes) {
  const double bound = GetParam();
  SzCompressor codec({SzMode::kAbsolute, bound, 16});
  const auto data = smooth_2d(48, 48);
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d2(48, 48)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_LE(std::fabs(decoded[i] - data[i]), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, SzBoundSweep,
                         ::testing::Values(1e-2, 1e-4, 1e-6, 1e-8, 1e-10));

}  // namespace
}  // namespace rmp::compress
