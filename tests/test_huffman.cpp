#include "compress/huffman.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace rmp::compress {
namespace {

TEST(Huffman, EmptyInput) {
  const auto bytes = huffman_encode({});
  EXPECT_TRUE(huffman_decode(bytes).empty());
}

TEST(Huffman, SingleDistinctSymbol) {
  std::vector<std::uint32_t> symbols(100, 42);
  const auto bytes = huffman_encode(symbols);
  EXPECT_EQ(huffman_decode(bytes), symbols);
}

TEST(Huffman, TwoSymbols) {
  std::vector<std::uint32_t> symbols = {1, 2, 1, 1, 2, 1};
  EXPECT_EQ(huffman_decode(huffman_encode(symbols)), symbols);
}

TEST(Huffman, SkewedDistributionCompresses) {
  // 95% of one symbol: the coded size should be far below 32 bits/symbol.
  std::mt19937 rng(7);
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 20000; ++i) {
    symbols.push_back(rng() % 100 < 95 ? 7u : rng() % 256);
  }
  const auto bytes = huffman_encode(symbols);
  EXPECT_LT(bytes.size(), symbols.size());  // < 8 bits/symbol
  EXPECT_EQ(huffman_decode(bytes), symbols);
}

TEST(Huffman, LargeAlphabetRoundTrip) {
  std::mt19937 rng(99);
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 5000; ++i) symbols.push_back(rng() % 65536);
  EXPECT_EQ(huffman_decode(huffman_encode(symbols)), symbols);
}

TEST(Huffman, SparseHugeSymbolValues) {
  std::vector<std::uint32_t> symbols = {0xFFFFFFFF, 0, 0xFFFFFFFF, 123456789,
                                        0xFFFFFFFF, 0, 123456789};
  EXPECT_EQ(huffman_decode(huffman_encode(symbols)), symbols);
}

TEST(Huffman, EncoderRejectsUnknownSymbol) {
  std::vector<std::uint32_t> sample = {1, 2, 3};
  HuffmanEncoder encoder(sample);
  BitWriter writer;
  EXPECT_THROW(encoder.write_symbol(writer, 4), std::out_of_range);
}

TEST(Huffman, CodeLengthsAreBounded) {
  // A Fibonacci-like frequency profile drives plain Huffman depth up; the
  // encoder must rebalance below its 58-bit write limit.
  std::vector<std::uint32_t> symbols;
  std::uint64_t a = 1, b = 1;
  for (std::uint32_t s = 0; s < 40; ++s) {
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(a, 100000); ++i) {
      symbols.push_back(s);
    }
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  HuffmanEncoder encoder(symbols);
  EXPECT_LE(encoder.max_code_length(), 58u);
  EXPECT_EQ(huffman_decode(huffman_encode(symbols)), symbols);
}

TEST(Huffman, MixedShortAndLongCodesRoundTrip) {
  // Fibonacci-ish weights force code lengths well beyond the 12-bit fast
  // table, so decoding exercises both the table and the bit-by-bit path
  // in one stream.
  std::vector<std::uint32_t> symbols;
  std::uint64_t weight = 1;
  for (std::uint32_t s = 0; s < 24; ++s) {
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(weight, 3000); ++i) {
      symbols.push_back(s);
    }
    weight = weight * 3 / 2 + 1;
  }
  // Shuffle deterministically so long and short codes interleave.
  std::mt19937 rng(4);
  std::shuffle(symbols.begin(), symbols.end(), rng);
  EXPECT_EQ(huffman_decode(huffman_encode(symbols)), symbols);
}

TEST(Huffman, FastPathHandlesStreamTail) {
  // A single symbol at the very end of the stream: the fast table's peek
  // pads with zeros and must still resolve the correct final code.
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 100; ++i) symbols.push_back(i % 3);
  symbols.push_back(2);
  EXPECT_EQ(huffman_decode(huffman_encode(symbols)), symbols);
}

class HuffmanSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HuffmanSizeSweep, RoundTripAtSize) {
  std::mt19937 rng(GetParam());
  std::vector<std::uint32_t> symbols;
  symbols.reserve(GetParam());
  for (std::size_t i = 0; i < GetParam(); ++i) {
    symbols.push_back(rng() % 97);
  }
  EXPECT_EQ(huffman_decode(huffman_encode(symbols)), symbols);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HuffmanSizeSweep,
                         ::testing::Values(1, 2, 3, 7, 64, 255, 256, 1000,
                                           4096));

}  // namespace
}  // namespace rmp::compress
