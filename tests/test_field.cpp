#include "sim/field.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rmp::sim {
namespace {

TEST(Field, ShapeAndRank) {
  EXPECT_EQ(Field(8, 1, 1).rank(), 1u);
  EXPECT_EQ(Field(8, 8, 1).rank(), 2u);
  EXPECT_EQ(Field(8, 8, 8).rank(), 3u);
  EXPECT_EQ(Field(8, 8, 8).size(), 512u);
}

TEST(Field, IndexingLayoutZFastest) {
  Field f(2, 3, 4);
  f.at(1, 2, 3) = 42.0;
  EXPECT_DOUBLE_EQ(f.flat()[(1 * 3 + 2) * 4 + 3], 42.0);
}

TEST(Field, FromDataValidatesSize) {
  EXPECT_THROW(Field::from_data(2, 2, 2, std::vector<double>(7)),
               std::invalid_argument);
  const Field f = Field::from_data(2, 2, 2, std::vector<double>(8, 1.0));
  EXPECT_DOUBLE_EQ(f.at(1, 1, 1), 1.0);
}

TEST(Field, ExtractZPlane) {
  Field f(2, 2, 3);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      for (std::size_t k = 0; k < 3; ++k) {
        f.at(i, j, k) = static_cast<double>(100 * i + 10 * j + k);
      }
    }
  }
  const Field plane = extract_z_plane(f, 1);
  EXPECT_EQ(plane.rank(), 2u);
  EXPECT_DOUBLE_EQ(plane.at(1, 1), 111.0);
  EXPECT_THROW(extract_z_plane(f, 3), std::out_of_range);
}

TEST(Field, AddSubtractInverse) {
  Field a(3, 3, 3, 2.0);
  Field b(3, 3, 3, 0.5);
  const Field d = subtract(a, b);
  const Field restored = add(d, b);
  for (std::size_t n = 0; n < a.size(); ++n) {
    EXPECT_DOUBLE_EQ(restored.flat()[n], a.flat()[n]);
  }
  EXPECT_THROW(subtract(a, Field(2, 2, 2)), std::invalid_argument);
}

TEST(Field, DownsampleShapes) {
  Field f(16, 16, 16, 1.0);
  const Field d = downsample(f, 4, 4, 4);
  EXPECT_EQ(d.nx(), 4u);
  EXPECT_EQ(d.ny(), 4u);
  EXPECT_EQ(d.nz(), 4u);
  EXPECT_THROW(downsample(f, 0, 1, 1), std::invalid_argument);
}

TEST(Field, DownsamplePicksGridPoints) {
  Field f(8, 1, 1);
  for (std::size_t i = 0; i < 8; ++i) f.at(i) = static_cast<double>(i);
  const Field d = downsample(f, 2, 1, 1);
  EXPECT_DOUBLE_EQ(d.at(0), 0.0);
  EXPECT_DOUBLE_EQ(d.at(1), 2.0);
  EXPECT_DOUBLE_EQ(d.at(3), 6.0);
}

TEST(Field, UpsampleLinearExactOnLinearData) {
  // Linear data must be reproduced exactly by (tri)linear interpolation.
  Field coarse(5, 1, 1);
  for (std::size_t i = 0; i < 5; ++i) coarse.at(i) = 2.0 * static_cast<double>(i);
  const Field fine = upsample_linear(coarse, 9, 1, 1);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_NEAR(fine.at(i), static_cast<double>(i), 1e-12);
  }
}

TEST(Field, UpsampleLinear3dExactOnTrilinear) {
  Field coarse(3, 3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t k = 0; k < 3; ++k) {
        coarse.at(i, j, k) = 1.0 * static_cast<double>(i) +
                             2.0 * static_cast<double>(j) +
                             3.0 * static_cast<double>(k);
      }
    }
  }
  const Field fine = upsample_linear(coarse, 5, 5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      for (std::size_t k = 0; k < 5; ++k) {
        const double expect = 0.5 * static_cast<double>(i) +
                              1.0 * static_cast<double>(j) +
                              1.5 * static_cast<double>(k);
        ASSERT_NEAR(fine.at(i, j, k), expect, 1e-12);
      }
    }
  }
}

TEST(Field, DownUpRoundTripApproximatesSmooth) {
  Field f(17, 17, 17);
  for (std::size_t i = 0; i < 17; ++i) {
    for (std::size_t j = 0; j < 17; ++j) {
      for (std::size_t k = 0; k < 17; ++k) {
        f.at(i, j, k) = std::sin(0.3 * static_cast<double>(i)) *
                        std::cos(0.2 * static_cast<double>(j)) +
                        0.1 * static_cast<double>(k);
      }
    }
  }
  const Field d = downsample(f, 2, 2, 2);
  const Field u = upsample_linear(d, 17, 17, 17);
  double max_err = 0;
  for (std::size_t n = 0; n < f.size(); ++n) {
    max_err = std::max(max_err, std::fabs(u.flat()[n] - f.flat()[n]));
  }
  EXPECT_LT(max_err, 0.2);  // smooth field, coarse grid: small residual
}

}  // namespace
}  // namespace rmp::sim
