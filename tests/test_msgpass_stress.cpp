// Stress and edge-case tests for the message-passing runtime: random
// all-to-all traffic, interleaved collectives, large payloads, and the
// failure-injection paths unit tests don't reach.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "parallel/decomposition.hpp"
#include "parallel/msgpass.hpp"

namespace rmp::parallel {
namespace {

TEST(MsgPassStress, RandomAllToAll) {
  // Every rank sends a deterministic pseudo-random payload to every other
  // rank; every payload must arrive intact.
  const int world = 6;
  run_ranks(world, [world](Communicator& comm) {
    auto payload_for = [](int from, int to) {
      std::vector<int> payload;
      std::mt19937 rng(static_cast<unsigned>(from * 100 + to));
      const std::size_t count = 1 + rng() % 200;
      payload.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        payload.push_back(static_cast<int>(rng()));
      }
      return payload;
    };
    for (int to = 0; to < world; ++to) {
      if (to != comm.rank()) {
        comm.send<int>(to, /*tag=*/7, payload_for(comm.rank(), to));
      }
    }
    for (int from = 0; from < world; ++from) {
      if (from != comm.rank()) {
        EXPECT_EQ(comm.recv<int>(from, 7), payload_for(from, comm.rank()));
      }
    }
  });
}

TEST(MsgPassStress, ManySmallMessagesInOrder) {
  run_ranks(2, [](Communicator& comm) {
    const int rounds = 2000;
    if (comm.rank() == 0) {
      for (int i = 0; i < rounds; ++i) {
        comm.send<int>(1, i % 5, std::vector<int>{i});
      }
    } else {
      // Receive per tag; FIFO must hold within each (source, tag) pair.
      std::vector<int> last(5, -1);
      for (int i = 0; i < rounds; ++i) {
        const int tag = i % 5;
        const auto value = comm.recv<int>(0, tag);
        EXPECT_GT(value[0], last[tag]);
        last[tag] = value[0];
      }
    }
  });
}

TEST(MsgPassStress, LargePayload) {
  run_ranks(2, [](Communicator& comm) {
    const std::size_t count = 1 << 20;  // 8 MiB of doubles
    if (comm.rank() == 0) {
      std::vector<double> payload(count);
      std::iota(payload.begin(), payload.end(), 0.0);
      comm.send<double>(1, 1, payload);
    } else {
      const auto payload = comm.recv<double>(0, 1);
      ASSERT_EQ(payload.size(), count);
      EXPECT_DOUBLE_EQ(payload.front(), 0.0);
      EXPECT_DOUBLE_EQ(payload.back(), static_cast<double>(count - 1));
    }
  });
}

TEST(MsgPassStress, InterleavedCollectives) {
  run_ranks(4, [](Communicator& comm) {
    for (int round = 0; round < 20; ++round) {
      std::vector<int> data;
      if (comm.rank() == round % 4) data = {round};
      comm.broadcast(data, round % 4);
      ASSERT_EQ(data, std::vector<int>{round});

      const double sum =
          comm.allreduce_sum(static_cast<double>(comm.rank() + round));
      EXPECT_DOUBLE_EQ(sum, 6.0 + 4.0 * round);
      comm.barrier();
    }
  });
}

TEST(MsgPassStress, RingPipeline) {
  // Pass an incrementing token around the ring: hop h (value h) arrives
  // at rank h % world; every rank can compute exactly which values it
  // will see, so the test is deterministic and self-terminating.
  const int world = 5;
  const int total_hops = world * 10;
  run_ranks(world, [world, total_hops](Communicator& comm) {
    const int next = (comm.rank() + 1) % world;
    const int prev = (comm.rank() + world - 1) % world;
    if (comm.rank() == 0) {
      comm.send<int>(next, 3, std::vector<int>{1});
    }
    for (int h = 1; h <= total_hops; ++h) {
      if (h % world != comm.rank()) continue;
      const auto token = comm.recv<int>(prev, 3);
      ASSERT_EQ(token[0], h);
      if (h < total_hops) {
        comm.send<int>(next, 3, std::vector<int>{h + 1});
      }
    }
  });
}

TEST(MsgPassStress, ZeroByteMessage) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<double>(1, 9, std::vector<double>{});
    } else {
      EXPECT_TRUE(comm.recv<double>(0, 9).empty());
    }
  });
}

TEST(MsgPassStress, SelfSend) {
  run_ranks(1, [](Communicator& comm) {
    comm.send<int>(0, 4, std::vector<int>{42});
    EXPECT_EQ(comm.recv<int>(0, 4)[0], 42);
  });
}

TEST(MsgPassStress, InvalidDestinationThrows) {
  EXPECT_THROW(run_ranks(2,
                         [](Communicator& comm) {
                           if (comm.rank() == 0) {
                             comm.send<int>(5, 0, std::vector<int>{1});
                           }
                         }),
               std::invalid_argument);
}

TEST(MsgPassStress, SingleRankWorld) {
  run_ranks(1, [](Communicator& comm) {
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    std::vector<int> data = {5};
    comm.broadcast(data, 0);
    EXPECT_EQ(comm.allreduce_sum(2.5), 2.5);
    EXPECT_EQ(comm.allreduce_max(-1.0), -1.0);
    const auto all = comm.gather<int>(data, 0);
    EXPECT_EQ(all, std::vector<int>{5});
  });
}

}  // namespace
}  // namespace rmp::parallel
