// Crash-consistency harness for the journaled sequence writer
// (DESIGN.md §10).  A 3-step sequence write is replayed once per possible
// crash point -- a hard kill at every faultable syscall, and a torn write
// cut at every byte boundary -- and after each simulated death the disk
// state must be classifiable as exactly one of:
//
//   old-complete      the destination is untouched (here: absent) and the
//                     journal holds a valid committed prefix, or nothing
//                     was created at all;
//   new-complete      the rename landed, so the destination is the full,
//                     byte-identical archive;
//   resumable-prefix  the journal's committed prefix decodes to the first
//                     m reference steps, the tail past it is discardable.
//
// Never a torn destination, and never a committed step that fails to
// decode.  Each replay then finishes the run through resume() and must
// produce a final archive byte-identical to an uninterrupted one.
#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <vector>

#include "fault_injection.hpp"
#include "io/container.hpp"
#include "io/sequence_file.hpp"
#include "obs/obs.hpp"

namespace rmp::io {
namespace {

namespace fs = std::filesystem;

constexpr int kSteps = 3;

Container sample(int i) {
  Container c;
  c.method = "crash_step" + std::to_string(i);
  c.nx = static_cast<std::uint64_t>(i + 1);
  c.ny = 2;
  c.add("data", std::vector<std::uint8_t>(static_cast<std::size_t>(24 + 7 * i),
                                          static_cast<std::uint8_t>(0x40 + i)));
  c.add("meta", std::vector<std::uint8_t>{1, 2, 3, 4});
  return c;
}

std::vector<char> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  std::vector<char> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

std::vector<std::uint8_t> slurp_u8(const fs::path& path) {
  const auto chars = slurp(path);
  return {chars.begin(), chars.end()};
}

class CrashConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rmp_crash_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    dest_ = dir_ / "run.rmps";
    journal_ = sequence_journal_path(dest_);
    obs::set_enabled(true);

    // The uninterrupted reference archive every replay must converge to.
    const auto ref = dir_ / "reference.rmps";
    write_full_sequence(ref);
    reference_ = slurp(ref);
    ASSERT_FALSE(reference_.empty());
  }
  void TearDown() override { fs::remove_all(dir_); }

  static void write_full_sequence(const fs::path& path) {
    SequenceWriter writer(path);
    for (int i = 0; i < kSteps; ++i) writer.append(sample(i));
    writer.finish();
  }

  /// Runs the full 3-step write against the currently installed FileOps,
  /// swallowing the typed error a mid-run fault produces.  Returns true
  /// when the run completed.  The writer's destructor executes while the
  /// injector is still live, exactly like an in-process crash unwinding.
  bool attempt_run() {
    try {
      write_full_sequence(dest_);
      return true;
    } catch (const ContainerError&) {
      return false;
    }
  }

  /// Classify the post-crash disk state and drive it to completion.
  /// Returns which of the three legal states the crash left behind.
  enum class State { kOldComplete, kNewComplete, kResumablePrefix };
  State verify_and_complete(std::uint64_t crash_point) {
    const std::string where = "crash point " + std::to_string(crash_point);

    if (fs::exists(dest_)) {
      // The rename landed: nothing less than the full archive may ever
      // appear under the destination name.
      EXPECT_EQ(slurp(dest_), reference_) << where << ": torn destination";
      EXPECT_FALSE(fs::exists(journal_))
          << where << ": journal outlived its rename";
      return State::kNewComplete;
    }

    if (!fs::exists(journal_)) {
      // Death before the journal was even created: rerun from scratch.
      write_full_sequence(dest_);
      EXPECT_EQ(slurp(dest_), reference_) << where;
      return State::kOldComplete;
    }

    // Journal on disk: its committed prefix must decode to exactly the
    // first m reference steps -- never a torn or reordered one.
    const auto journal_bytes = slurp_u8(journal_);
    const JournalScan scan = scan_sequence_journal(journal_bytes);
    EXPECT_LE(scan.entries.size(), static_cast<std::size_t>(kSteps)) << where;
    for (std::size_t s = 0; s < scan.entries.size(); ++s) {
      const auto& entry = scan.entries[s];
      const std::span<const std::uint8_t> step_bytes(
          journal_bytes.data() + entry.offset, entry.size);
      try {
        const Container decoded = deserialize(step_bytes);
        EXPECT_EQ(decoded.method, "crash_step" + std::to_string(s)) << where;
      } catch (const std::exception& e) {
        ADD_FAILURE() << where << ": committed step " << s
                      << " does not decode: " << e.what();
      }
    }

    auto writer = SequenceWriter::resume(dest_);
    EXPECT_EQ(writer.steps_written(), scan.entries.size()) << where;
    for (auto s = writer.steps_written(); s < kSteps; ++s) {
      writer.append(sample(static_cast<int>(s)));
    }
    writer.finish();
    EXPECT_EQ(slurp(dest_), reference_)
        << where << ": resumed archive differs from uninterrupted one";
    return State::kResumablePrefix;
  }

  void reset_attempt_state() {
    fs::remove(dest_);
    fs::remove(journal_);
  }

  fs::path dir_;
  fs::path dest_;
  fs::path journal_;
  std::vector<char> reference_;
};

TEST_F(CrashConsistencyTest, KillAtEverySyscallLeavesRecoverableState) {
  // Calibrate: count the faultable ops one uninterrupted run performs.
  std::uint64_t total_ops = 0;
  {
    testing::ScopedFaultInjection probe({FaultKind::kNone, 1});
    ASSERT_TRUE(attempt_run());
    total_ops = probe.ops_seen();
  }
  ASSERT_GT(total_ops, 10u) << "op count implausibly small; seam bypassed?";
  reset_attempt_state();

  std::array<int, 3> seen{};  // old-complete / new-complete / resumable
  for (std::uint64_t k = 1; k <= total_ops; ++k) {
    bool completed = false;
    {
      testing::ScopedFaultInjection inject({FaultKind::kKill, k});
      completed = attempt_run();
    }
    ASSERT_FALSE(completed) << "kill@" << k << " did not stop the run";
    const State state = verify_and_complete(k);
    ++seen[static_cast<std::size_t>(state)];
    reset_attempt_state();
  }
  // The sweep must actually exercise all three recovery shapes: death
  // before journal creation, death mid-journal, and death after rename.
  EXPECT_GT(seen[0], 0) << "no kill point hit the pre-journal window";
  EXPECT_GT(seen[2], 0) << "no kill point left a resumable prefix";
  EXPECT_GT(seen[1], 0) << "no kill point landed after the rename";
}

TEST_F(CrashConsistencyTest, TornWriteAtEveryByteLeavesRecoverableState) {
  // The torn-write budget covers every byte the run ever hands to
  // write(): steps, commit markers and trailer -- i.e. the journal's
  // final size, which equals the published file's size.
  const auto total_bytes = static_cast<std::uint64_t>(reference_.size());
  ASSERT_GT(total_bytes, 0u);

  bool saw_resumable = false;
  for (std::uint64_t budget = 1; budget < total_bytes; ++budget) {
    bool completed = false;
    {
      testing::ScopedFaultInjection inject({FaultKind::kTorn, budget});
      completed = attempt_run();
    }
    ASSERT_FALSE(completed) << "torn@" << budget << " did not stop the run";
    const State state = verify_and_complete(budget);
    saw_resumable = saw_resumable || state == State::kResumablePrefix;
    reset_attempt_state();
  }
  EXPECT_TRUE(saw_resumable);
}

TEST_F(CrashConsistencyTest, RepeatedCrashesDuringResumeStillConverge) {
  // A resumed run can die too.  Crash the original run, then crash every
  // following resume attempt at a shifting op, until one completes; the
  // survivor must still be byte-identical to the uninterrupted archive.
  {
    testing::ScopedFaultInjection inject({FaultKind::kKill, 6});
    ASSERT_FALSE(attempt_run());
  }
  bool completed = false;
  for (std::uint64_t k = 2; !completed && k < 64; k += 3) {
    try {
      testing::ScopedFaultInjection inject({FaultKind::kKill, k});
      std::optional<SequenceWriter> writer;
      if (fs::exists(journal_)) {
        writer.emplace(SequenceWriter::resume(dest_));
      } else if (!fs::exists(dest_)) {
        writer.emplace(dest_);
      } else {
        completed = true;  // a previous round already published
        break;
      }
      for (auto s = writer->steps_written(); s < kSteps; ++s) {
        writer->append(sample(static_cast<int>(s)));
      }
      writer->finish();
      completed = true;
    } catch (const ContainerError&) {
      // Died again; next round resumes further along.
    }
  }
  ASSERT_TRUE(completed) << "no resume attempt survived";
  EXPECT_EQ(slurp(dest_), reference_);
}

}  // namespace
}  // namespace rmp::io
