#include "compress/fpc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>

namespace rmp::compress {
namespace {

TEST(Fpc, ExactRoundTripSmooth) {
  FpcCompressor codec;
  std::vector<double> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::sin(0.001 * static_cast<double>(i)) * 42.0;
  }
  const auto decoded = codec.decompress(codec.compress(data, Dims::d1(5000)));
  EXPECT_EQ(decoded, data);
}

TEST(Fpc, ExactRoundTripRandom) {
  FpcCompressor codec;
  std::mt19937_64 rng(11);
  std::vector<double> data(3000);
  for (auto& v : data) {
    std::uint64_t bits = rng();
    std::memcpy(&v, &bits, sizeof(v));
    if (std::isnan(v)) v = 0.0;  // NaN payloads compare unequal via ==
  }
  const auto decoded = codec.decompress(codec.compress(data, Dims::d1(3000)));
  ASSERT_EQ(decoded.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::uint64_t a, b;
    std::memcpy(&a, &data[i], 8);
    std::memcpy(&b, &decoded[i], 8);
    ASSERT_EQ(a, b) << "bit mismatch at " << i;
  }
}

TEST(Fpc, BitExactIncludingSpecials) {
  FpcCompressor codec;
  std::vector<double> data = {0.0,
                              -0.0,
                              std::numeric_limits<double>::infinity(),
                              -std::numeric_limits<double>::infinity(),
                              std::numeric_limits<double>::denorm_min(),
                              std::numeric_limits<double>::max(),
                              std::nan("")};
  const auto decoded =
      codec.decompress(codec.compress(data, Dims::d1(data.size())));
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::uint64_t a, b;
    std::memcpy(&a, &data[i], 8);
    std::memcpy(&b, &decoded[i], 8);
    EXPECT_EQ(a, b) << "at " << i;
  }
}

TEST(Fpc, OddCountPacksNibbles) {
  FpcCompressor codec;
  std::vector<double> data = {1.0, 2.0, 3.0};
  const auto decoded = codec.decompress(codec.compress(data, Dims::d1(3)));
  EXPECT_EQ(decoded, data);
}

TEST(Fpc, RepetitiveDataCompresses) {
  FpcCompressor codec;
  std::vector<double> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>(i % 16);
  }
  const auto stream = codec.compress(data, Dims::d1(10000));
  EXPECT_GT(compression_ratio(data.size(), stream.size()), 2.0);
  EXPECT_EQ(codec.decompress(stream), data);
}

TEST(Fpc, EmptyInput) {
  FpcCompressor codec;
  std::vector<double> data;
  const auto stream = codec.compress(data, Dims{0, 1, 1});
  EXPECT_TRUE(codec.decompress(stream).empty());
}

TEST(Fpc, RejectsBadTableBits) {
  EXPECT_THROW(FpcCompressor({2}), std::invalid_argument);
  EXPECT_THROW(FpcCompressor({30}), std::invalid_argument);
}

TEST(Fpc, IsLossless) {
  FpcCompressor codec;
  EXPECT_TRUE(codec.lossless());
}

class FpcTableSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FpcTableSweep, RoundTripAtTableSize) {
  FpcCompressor codec({GetParam()});
  std::vector<double> data(2000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::cos(0.01 * static_cast<double>(i)) * 1e5;
  }
  EXPECT_EQ(codec.decompress(codec.compress(data, Dims::d1(2000))), data);
}

INSTANTIATE_TEST_SUITE_P(Tables, FpcTableSweep,
                         ::testing::Values(4, 8, 12, 16, 20, 24));

}  // namespace
}  // namespace rmp::compress
