#include "compress/lossless.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <tuple>

namespace rmp::compress {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Lossless, EmptyInput) {
  const auto compressed = lossless_compress({});
  EXPECT_TRUE(lossless_decompress(compressed).empty());
}

TEST(Lossless, ShortLiteralOnly) {
  const auto input = bytes_of("abc");
  EXPECT_EQ(lossless_decompress(lossless_compress(input)), input);
}

TEST(Lossless, RepetitiveInputCompressesWell) {
  std::vector<std::uint8_t> input;
  for (int i = 0; i < 1000; ++i) {
    const auto chunk = bytes_of("the quick brown fox ");
    input.insert(input.end(), chunk.begin(), chunk.end());
  }
  const auto compressed = lossless_compress(input);
  EXPECT_LT(compressed.size(), input.size() / 10);
  EXPECT_EQ(lossless_decompress(compressed), input);
}

TEST(Lossless, IncompressibleFallsBackToRaw) {
  std::mt19937 rng(5);
  std::vector<std::uint8_t> input(4096);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng());
  const auto compressed = lossless_compress(input);
  // Raw mode overhead is 9 bytes.
  EXPECT_LE(compressed.size(), input.size() + 9);
  EXPECT_EQ(lossless_decompress(compressed), input);
}

TEST(Lossless, OverlappingMatchRunLength) {
  // "aaaa..." forces overlapping copies (distance 1, long length).
  std::vector<std::uint8_t> input(10000, 'a');
  const auto compressed = lossless_compress(input);
  EXPECT_LT(compressed.size(), 200u);
  EXPECT_EQ(lossless_decompress(compressed), input);
}

TEST(Lossless, AllByteValues) {
  std::vector<std::uint8_t> input;
  for (int round = 0; round < 8; ++round) {
    for (int b = 0; b < 256; ++b) input.push_back(static_cast<std::uint8_t>(b));
  }
  EXPECT_EQ(lossless_decompress(lossless_compress(input)), input);
}

TEST(Lossless, RejectsGarbage) {
  std::vector<std::uint8_t> garbage = {0x77, 1, 2, 3};
  EXPECT_THROW(lossless_decompress(garbage), std::runtime_error);
  EXPECT_THROW(lossless_decompress({}), std::runtime_error);
}

class LosslessOptionsSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, unsigned>> {
};

TEST_P(LosslessOptionsSweep, RoundTripUnderAnyTuning) {
  const auto& [window_bits, min_match, max_chain] = GetParam();
  LosslessOptions options;
  options.window = 1u << window_bits;
  options.min_match = min_match;
  options.max_chain = max_chain;

  std::vector<std::uint8_t> input;
  for (int i = 0; i < 2000; ++i) {
    // Structured but not trivial: repeated motifs at varying distances.
    input.push_back(static_cast<std::uint8_t>((i * 7) % 251));
    if (i % 5 == 0) {
      const auto motif = bytes_of("motif");
      input.insert(input.end(), motif.begin(), motif.end());
    }
  }
  const auto compressed = lossless_compress(input, options);
  EXPECT_EQ(lossless_decompress(compressed), input);
}

TEST_P(LosslessOptionsSweep, SmallerWindowNeverDecodesWrong) {
  const auto& [window_bits, min_match, max_chain] = GetParam();
  LosslessOptions options;
  options.window = 1u << window_bits;
  options.min_match = min_match;
  options.max_chain = max_chain;
  // Matches farther than the window must simply not be used.
  std::vector<std::uint8_t> input;
  const auto chunk = bytes_of("abcdefghijklmnopqrstuvwxyz0123456789");
  for (int rep = 0; rep < 40; ++rep) {
    input.insert(input.end(), chunk.begin(), chunk.end());
    input.push_back(static_cast<std::uint8_t>(rep));
  }
  EXPECT_EQ(lossless_decompress(lossless_compress(input, options)), input);
}

INSTANTIATE_TEST_SUITE_P(
    Tunings, LosslessOptionsSweep,
    ::testing::Combine(::testing::Values(6u, 10u, 16u),
                       ::testing::Values(4u, 8u),
                       ::testing::Values(1u, 8u, 64u)));

class LosslessRandomized : public ::testing::TestWithParam<unsigned> {};

TEST_P(LosslessRandomized, StructuredRandomRoundTrip) {
  std::mt19937 rng(GetParam());
  // Mix of random runs and repeated motifs, the typical shape of
  // quantization-code byte streams.
  std::vector<std::uint8_t> input;
  for (int block = 0; block < 50; ++block) {
    if (rng() % 2 == 0) {
      const std::uint8_t value = static_cast<std::uint8_t>(rng());
      const std::size_t run = rng() % 300;
      input.insert(input.end(), run, value);
    } else {
      const std::size_t run = rng() % 100;
      for (std::size_t i = 0; i < run; ++i) {
        input.push_back(static_cast<std::uint8_t>(rng()));
      }
    }
  }
  EXPECT_EQ(lossless_decompress(lossless_compress(input)), input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LosslessRandomized,
                         ::testing::Range(0u, 10u));

}  // namespace
}  // namespace rmp::compress
