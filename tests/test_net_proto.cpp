// Wire-protocol tests: frame round trips, the validation order of the
// incremental FrameDecoder (magic -> header CRC -> version -> type ->
// reserved -> size cap -> payload CRC), decoder poisoning, and the
// bounds-checked payload codecs.  Complements fuzz/fuzz_proto.cpp, which
// hammers the same deserializer with unstructured bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "io/checksum.hpp"
#include "net/net_error.hpp"
#include "net/protocol.hpp"

namespace {

using namespace rmp;
using net::FrameDecoder;
using net::MsgType;
using net::NetErrc;
using net::NetError;
using net::Status;

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

/// Expect `decoder.next()` after feeding `wire` to throw a NetError with
/// the given code.
void expect_reject(const std::vector<std::uint8_t>& wire, NetErrc code) {
  FrameDecoder decoder;
  decoder.feed(wire);
  try {
    (void)decoder.next();
    FAIL() << "expected NetError[" << net::to_string(code) << "]";
  } catch (const NetError& e) {
    EXPECT_EQ(e.code(), code) << e.what();
  }
  EXPECT_TRUE(decoder.poisoned());
}

/// Re-seal the header CRC after mutating header bytes, so a test reaches
/// the validation step *behind* the CRC check.
void reseal_header(std::vector<std::uint8_t>& wire) {
  ASSERT_GE(wire.size(), net::kFrameHeaderBytes);
  const std::uint32_t crc =
      io::crc32(std::span<const std::uint8_t>(wire.data(), 32));
  std::memcpy(wire.data() + 32, &crc, sizeof(crc));
}

TEST(NetProto, FrameRoundTripsThroughDecoder) {
  const auto payload = bytes_of("hello, rmpd");
  const auto wire = net::encode_frame(MsgType::kEncode, 42, 1500, payload);
  ASSERT_EQ(wire.size(), net::kFrameHeaderBytes + payload.size());

  FrameDecoder decoder;
  decoder.feed(wire);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->header.type, MsgType::kEncode);
  EXPECT_EQ(frame->header.status, Status::kOk);
  EXPECT_EQ(frame->header.request_id, 42u);
  EXPECT_EQ(frame->header.deadline_ms, 1500u);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(NetProto, EmptyPayloadAndStatusRoundTrip) {
  const auto wire =
      net::encode_frame(MsgType::kError, 7, 0, {}, Status::kBusy);
  FrameDecoder decoder;
  decoder.feed(wire);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->header.status, Status::kBusy);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(NetProto, ByteByByteFeedReassemblesFrames) {
  const auto payload = bytes_of("dripped one byte at a time");
  const auto wire = net::encode_frame(MsgType::kDecode, 9, 0, payload);
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(std::span<const std::uint8_t>(&wire[i], 1));
    EXPECT_FALSE(decoder.next().has_value()) << "frame surfaced early at " << i;
  }
  decoder.feed(std::span<const std::uint8_t>(&wire.back(), 1));
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload, payload);
}

TEST(NetProto, BackToBackFramesInOneFeed) {
  auto wire = net::encode_frame(MsgType::kPing, 1, 0, {});
  const auto second = net::encode_frame(MsgType::kStats, 2, 0, {});
  wire.insert(wire.end(), second.begin(), second.end());
  FrameDecoder decoder;
  decoder.feed(wire);
  const auto a = decoder.next();
  const auto b = decoder.next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->header.type, MsgType::kPing);
  EXPECT_EQ(b->header.type, MsgType::kStats);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(NetProto, GarbageMagicIsRejected) {
  auto wire = net::encode_frame(MsgType::kPing, 1, 0, {});
  wire[0] = 'X';
  expect_reject(wire, NetErrc::kBadMagic);
}

TEST(NetProto, HeaderBitFlipFailsHeaderCrc) {
  auto wire = net::encode_frame(MsgType::kPing, 1, 0, {});
  wire[12] ^= 0x01;  // request id byte; CRC not re-sealed
  expect_reject(wire, NetErrc::kHeaderCorrupt);
}

TEST(NetProto, WrongVersionIsRejectedBehindTheCrc) {
  auto wire = net::encode_frame(MsgType::kPing, 1, 0, {});
  wire[4] = 0x7F;  // version lo byte
  reseal_header(wire);
  expect_reject(wire, NetErrc::kBadVersion);
}

TEST(NetProto, UnknownTypeIsRejected) {
  auto wire = net::encode_frame(MsgType::kPing, 1, 0, {});
  wire[6] = 0xEE;  // type lo byte
  reseal_header(wire);
  expect_reject(wire, NetErrc::kBadType);
}

TEST(NetProto, ReservedBitsMustBeZero) {
  auto wire = net::encode_frame(MsgType::kPing, 1, 0, {});
  wire[10] = 0x01;
  reseal_header(wire);
  expect_reject(wire, NetErrc::kHeaderCorrupt);
}

TEST(NetProto, OversizedDeclaredPayloadIsRejectedBeforeAllocation) {
  auto wire = net::encode_frame(MsgType::kEncode, 1, 0, bytes_of("x"));
  const std::uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(wire.data() + 24, &huge, sizeof(huge));
  reseal_header(wire);
  FrameDecoder decoder(/*max_payload=*/1024);
  decoder.feed(wire);
  EXPECT_THROW((void)decoder.next(), NetError);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(NetProto, PayloadBitFlipFailsPayloadCrc) {
  auto wire = net::encode_frame(MsgType::kEncode, 1, 0,
                                bytes_of("payload under test"));
  wire.back() ^= 0x40;
  expect_reject(wire, NetErrc::kPayloadCorrupt);
}

TEST(NetProto, PoisonedDecoderStaysPoisoned) {
  auto bad = net::encode_frame(MsgType::kPing, 1, 0, {});
  bad[0] = 'Z';
  FrameDecoder decoder;
  decoder.feed(bad);
  EXPECT_THROW((void)decoder.next(), NetError);
  // A perfectly valid frame after the poison must NOT resynchronize.
  decoder.feed(net::encode_frame(MsgType::kPing, 2, 0, {}));
  EXPECT_THROW((void)decoder.next(), NetError);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(NetProto, BufferedReportsTornFrameBytes) {
  const auto wire = net::encode_frame(MsgType::kPing, 3, 0, {});
  FrameDecoder decoder;
  decoder.feed(std::span<const std::uint8_t>(wire.data(), 10));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.buffered(), 10u);
}

// --------------------------------------------------------------------------
// Payload codecs

TEST(NetProto, EncodeRequestRoundTrips) {
  net::EncodeRequest request;
  request.method = "svd";
  request.codec = "zfp";
  request.guard = true;
  request.error_bound = 0.125;
  request.store = net::StoreMode::kSequence;
  request.store_name = "run42.rmps";
  request.nx = 4;
  request.ny = 3;
  request.nz = 2;
  request.data.assign(24, 1.5);
  const auto decoded = net::EncodeRequest::decode(request.encode());
  EXPECT_EQ(decoded.method, "svd");
  EXPECT_EQ(decoded.codec, "zfp");
  EXPECT_TRUE(decoded.guard);
  ASSERT_TRUE(decoded.error_bound.has_value());
  EXPECT_DOUBLE_EQ(*decoded.error_bound, 0.125);
  EXPECT_EQ(decoded.store, net::StoreMode::kSequence);
  EXPECT_EQ(decoded.store_name, "run42.rmps");
  EXPECT_EQ(decoded.nx, 4u);
  EXPECT_EQ(decoded.data, request.data);
}

TEST(NetProto, EncodeRequestShapeMismatchIsMalformed) {
  net::EncodeRequest request;
  request.nx = 4;
  request.ny = 4;
  request.nz = 4;
  request.data.assign(63, 0.0);  // 63 != 64
  auto wire = request.encode();
  try {
    (void)net::EncodeRequest::decode(wire);
    FAIL() << "shape mismatch accepted";
  } catch (const NetError& e) {
    EXPECT_EQ(e.code(), NetErrc::kMalformedPayload);
  }
}

TEST(NetProto, TruncatedPayloadIsMalformedNotACrash) {
  net::EncodeRequest request;
  request.nx = 8;
  request.data.assign(8, 2.0);
  const auto wire = request.encode();
  for (std::size_t cut = 0; cut < wire.size(); cut += 7) {
    std::span<const std::uint8_t> head(wire.data(), cut);
    EXPECT_THROW((void)net::EncodeRequest::decode(head), NetError)
        << "cut at " << cut;
  }
}

TEST(NetProto, TrailingGarbageIsMalformed) {
  net::VerifyRequest request;
  request.container = bytes_of("container bytes");
  auto wire = request.encode();
  wire.push_back(0xAB);
  EXPECT_THROW((void)net::VerifyRequest::decode(wire), NetError);
}

TEST(NetProto, DecodeAndVerifyAndStatsRoundTrip) {
  net::DecodeRequest decode_request;
  decode_request.codec = "zfp";
  decode_request.container = bytes_of("archive");
  decode_request.best_effort = true;
  const auto decoded = net::DecodeRequest::decode(decode_request.encode());
  EXPECT_EQ(decoded.codec, "zfp");
  EXPECT_EQ(decoded.container, decode_request.container);
  EXPECT_TRUE(decoded.best_effort);

  net::VerifyResponse verify;
  verify.complete = true;
  verify.repaired = true;
  verify.version = 3;
  verify.detail = "meta 16 ok\n";
  const auto verify_decoded = net::VerifyResponse::decode(verify.encode());
  EXPECT_TRUE(verify_decoded.complete);
  EXPECT_TRUE(verify_decoded.repaired);
  EXPECT_EQ(verify_decoded.version, 3u);
  EXPECT_EQ(verify_decoded.detail, verify.detail);

  net::StatsResponse stats;
  stats.queue_depth = 3;
  stats.queue_capacity = 64;
  stats.accepted = 100;
  stats.rejected_busy = 5;
  stats.completed = 90;
  stats.failed = 5;
  stats.obs_json = "{\"v\":\"rmp-obs-v1\"}";
  const auto stats_decoded = net::StatsResponse::decode(stats.encode());
  EXPECT_EQ(stats_decoded.queue_depth, 3u);
  EXPECT_EQ(stats_decoded.queue_capacity, 64u);
  EXPECT_EQ(stats_decoded.accepted, 100u);
  EXPECT_EQ(stats_decoded.rejected_busy, 5u);
  EXPECT_EQ(stats_decoded.completed, 90u);
  EXPECT_EQ(stats_decoded.obs_json, stats.obs_json);
}

TEST(NetProto, EncodeResponseRoundTripsBothShapes) {
  net::EncodeResponse inline_response;
  inline_response.method = "pca";
  inline_response.original_bytes = 2048;
  inline_response.stored_bytes = 512;
  inline_response.container = bytes_of("bytes");
  const auto a = net::EncodeResponse::decode(inline_response.encode());
  EXPECT_FALSE(a.stored);
  EXPECT_EQ(a.container, inline_response.container);
  EXPECT_EQ(a.original_bytes, 2048u);

  net::EncodeResponse stored_response;
  stored_response.stored = true;
  stored_response.stored_path = "/data/out/field.rmp";
  const auto b = net::EncodeResponse::decode(stored_response.encode());
  EXPECT_TRUE(b.stored);
  EXPECT_EQ(b.stored_path, "/data/out/field.rmp");
}

}  // namespace
