// libFuzzer target: throw arbitrary bytes at huffman_decode.  The hardened
// contract (DESIGN.md §13): every input either decodes or fails with a
// typed CodecError -- no other exception type, no crash, no sanitizer
// finding, and no allocation beyond what the input length itself bounds.
// When a decode succeeds, re-encoding the symbols and decoding again must
// reproduce them (the codec is self-consistent on its own output).
//
// Build:  cmake -B build-fuzz -S . -DCMAKE_CXX_COMPILER=clang++ \
//             -DRMP_FUZZ=ON -DRMP_BUILD_TESTS=OFF -DRMP_BUILD_BENCH=OFF \
//             -DRMP_BUILD_EXAMPLES=OFF
//         ./build-fuzz/fuzz/fuzz_huffman corpus/ -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "compress/codec_error.hpp"
#include "compress/huffman.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  std::vector<std::uint32_t> symbols;
  try {
    symbols = rmp::compress::huffman_decode(bytes);
  } catch (const rmp::compress::CodecError&) {
    return 0;  // typed rejection is the contract
  }
  // Any other exception escapes and crashes the fuzzer: that is the point.

  // Self-consistency on accepted inputs (bounded so giant synthetic
  // streams don't stall the fuzzer).
  if (symbols.size() <= (1u << 16)) {
    const auto reencoded = rmp::compress::huffman_encode(symbols);
    if (rmp::compress::huffman_decode(reencoded) != symbols) {
      __builtin_trap();
    }
  }
  return 0;
}
