// libFuzzer target: throw arbitrary bytes at the sequence-journal scanner
// that crash recovery trusts (scan_sequence_journal) and then at the
// container parser for every step the scan claims is committed.  The
// contract: the scan itself never throws and never reads out of bounds,
// its claimed entries always lie inside the buffer, and a committed entry
// -- whose payload CRC the scan just verified -- must deserialize without
// a crash (typed rejection is tolerated, silent memory errors are not).
//
// Build:  cmake -B build-fuzz -S . -DCMAKE_CXX_COMPILER=clang++ \
//             -DRMP_FUZZ=ON -DRMP_BUILD_TESTS=OFF -DRMP_BUILD_BENCH=OFF \
//             -DRMP_BUILD_EXAMPLES=OFF
//         ./build-fuzz/fuzz/fuzz_sequence corpus/ -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <exception>
#include <span>

#include "io/container.hpp"
#include "io/sequence_file.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  const rmp::io::JournalScan scan = rmp::io::scan_sequence_journal(bytes);

  // The committed prefix must be internally consistent: entries in order,
  // inside the buffer, and jointly bounded by committed_bytes.
  if (scan.committed_bytes > bytes.size()) __builtin_trap();
  if (scan.committed_bytes + scan.torn_bytes != bytes.size()) __builtin_trap();
  std::uint64_t cursor = 0;
  for (const auto& entry : scan.entries) {
    if (entry.offset != cursor) __builtin_trap();
    if (entry.size > bytes.size() - entry.offset) __builtin_trap();
    cursor = entry.offset + entry.size + rmp::io::kSequenceCommitMarkerBytes;
  }
  if (cursor != scan.committed_bytes) __builtin_trap();

  for (const auto& entry : scan.entries) {
    const auto step = bytes.subspan(entry.offset, entry.size);
    try {
      rmp::io::ReadReport report;
      (void)rmp::io::deserialize_salvage(step, &report);
    } catch (const std::exception&) {
      // A CRC-valid step can still carry a hostile envelope (e.g. an
      // implausible shape); a typed throw is an acceptable verdict.
    }
  }
  return 0;
}
