// libFuzzer target: throw arbitrary bytes at the container salvage parser
// and the guarded decode path.  The contract under test: no crash, no
// sanitizer report, and every rejection is a typed std::exception -- the
// same promise the guard layer makes to real callers handed a truncated
// or bit-flipped archive.
//
// Build:  cmake -B build-fuzz -S . -DCMAKE_CXX_COMPILER=clang++ \
//             -DRMP_FUZZ=ON -DRMP_BUILD_TESTS=OFF -DRMP_BUILD_BENCH=OFF \
//             -DRMP_BUILD_EXAMPLES=OFF
//         ./build-fuzz/fuzz/fuzz_container corpus/ -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <exception>
#include <span>

#include "compress/factory.hpp"
#include "core/pipeline.hpp"
#include "io/container.hpp"

namespace {

// Decoders allocate nx*ny*nz doubles up front; cap the claimed shape so
// the fuzzer explores parser states instead of OOM-ing the harness.
constexpr std::uint64_t kMaxCells = std::uint64_t{1} << 20;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  rmp::io::Container container;
  rmp::io::ReadReport report;
  try {
    container = rmp::io::deserialize_salvage(bytes, &report);
  } catch (const std::exception&) {
    return 0;  // typed rejection of a hopeless envelope is the contract
  }

  const std::uint64_t cells = static_cast<std::uint64_t>(container.nx) *
                              container.ny * container.nz;
  if (cells == 0 || cells > kMaxCells) return 0;

  static const auto reduced = rmp::compress::make_sz_original();
  static const auto delta = rmp::compress::make_sz_delta();
  const rmp::core::CodecPair codecs{reduced.get(), delta.get()};
  try {
    (void)rmp::core::reconstruct_best_effort(container, report, codecs);
  } catch (const std::exception&) {
    // Salvaged-but-undecodable payloads must still fail with typed errors.
  }
  return 0;
}
