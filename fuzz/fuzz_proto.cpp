// libFuzzer target: throw arbitrary bytes at the rmpd wire-frame
// deserializer (net::FrameDecoder) and, for every frame it yields, at the
// payload codec matching the frame's message type.  The contract
// (DESIGN.md §11): no crash, no hang, no over-allocation, every rejection
// is a typed net::NetError, and once the decoder throws it stays poisoned
// -- a corrupt TCP stream must never be resynchronized into phantom
// frames.  The input's first byte picks a chunking pattern so the
// incremental feed()/next() reassembly paths get exercised, not just the
// whole-buffer one.
//
// Build:  cmake -B build-fuzz -S . -DCMAKE_CXX_COMPILER=clang++ \
//             -DRMP_FUZZ=ON -DRMP_BUILD_TESTS=OFF -DRMP_BUILD_BENCH=OFF \
//             -DRMP_BUILD_EXAMPLES=OFF
//         ./build-fuzz/fuzz/fuzz_proto corpus/ -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/net_error.hpp"
#include "net/protocol.hpp"

namespace {

// A small cap keeps the fuzzer in the parser's state space: declared
// sizes above it must be rejected before any allocation happens.
constexpr std::size_t kMaxPayload = 1u << 16;

void decode_payload(const rmp::net::Frame& frame) {
  using rmp::net::MsgType;
  const std::span<const std::uint8_t> payload(frame.payload);
  switch (frame.header.type) {
    case MsgType::kEncode:
      (void)rmp::net::EncodeRequest::decode(payload);
      break;
    case MsgType::kDecode:
      (void)rmp::net::DecodeRequest::decode(payload);
      break;
    case MsgType::kVerify:
      (void)rmp::net::VerifyRequest::decode(payload);
      break;
    case MsgType::kEncodeResult:
      (void)rmp::net::EncodeResponse::decode(payload);
      break;
    case MsgType::kDecodeResult:
      (void)rmp::net::DecodeResponse::decode(payload);
      break;
    case MsgType::kVerifyResult:
      (void)rmp::net::VerifyResponse::decode(payload);
      break;
    case MsgType::kStatsResult:
      (void)rmp::net::StatsResponse::decode(payload);
      break;
    case MsgType::kError:
      (void)rmp::net::ErrorResponse::decode(payload);
      break;
    default:
      break;  // ping/pong/stats carry no payload contract
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  // First byte selects the feed chunking: 0 -> whole buffer, otherwise
  // chunks of that many bytes (1 = byte-by-byte torn-frame reassembly).
  const std::size_t chunk = data[0] == 0 ? size : data[0];
  const std::span<const std::uint8_t> stream(data + 1, size - 1);

  rmp::net::FrameDecoder decoder(kMaxPayload);
  bool poisoned = false;
  for (std::size_t offset = 0; offset < stream.size(); offset += chunk) {
    const std::size_t n = std::min(chunk, stream.size() - offset);
    decoder.feed(stream.subspan(offset, n));
    try {
      while (const auto frame = decoder.next()) {
        if (poisoned) __builtin_trap();  // frames after poison = resync bug
        try {
          decode_payload(*frame);
        } catch (const rmp::net::NetError&) {
          // Typed rejection of a malformed payload is the contract.
        }
      }
    } catch (const rmp::net::NetError&) {
      poisoned = true;
      if (!decoder.poisoned()) __builtin_trap();  // throw must poison
    }
  }
  return 0;
}
